//! The probe surface: phases, events, and the monomorphized sink.

use std::time::Instant;

/// A named phase of the system, shared by every execution path.
///
/// Serial rounds decompose into `Mutate → Inject → Handoff → Plan →
/// Validate → Route`; the streaming kernel fuses the last three into
/// `Stream`; the sharded path reports its barrier phases; the server
/// reports the slice pipeline (`Ticket → Lock → TenantStep →
/// SliceMerge`). `VectorDispatch` is an instant event carrying the
/// dispatch decision for a vectorized run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Phase {
    /// Topology events applied at the top of a round.
    Mutate,
    /// Workload deltas injected into the load vector.
    Inject,
    /// Asleep-queue handoff deltas folded in after injection.
    Handoff,
    /// Balancer planning (per-node flow proposals).
    Plan,
    /// Fairness/overdraw validation of the proposed flows.
    Validate,
    /// Applying validated flows to the load vector.
    Route,
    /// The kernel's fused plan+validate+route streaming pass.
    Stream,
    /// Vector-kernel dispatch decision (value encodes the strategy).
    VectorDispatch,
    /// Sharded path: topology drive + replica replay (T0/T1).
    ShardTopology,
    /// Sharded path: injection publish/assemble/apply (I0–I2).
    ShardInject,
    /// Sharded path: plan + validate + accumulate (phase A).
    ShardPlan,
    /// Sharded path: merge interior and dirty frontier (phase B).
    ShardMerge,
    /// Server: claiming a tenant ticket from the shared counter.
    Ticket,
    /// Server: acquiring the tenant mutex.
    Lock,
    /// Server: advancing the locked tenant's engine rounds.
    TenantStep,
    /// Server: merging worker reports into the slice report.
    SliceMerge,
    /// Server: one whole scheduler slice.
    Slice,
}

/// Number of distinct [`Phase`] values (size for per-phase arrays).
pub const PHASE_COUNT: usize = 17;

/// All phases, in declaration order (index = `Phase::index`).
const ALL_PHASES: [Phase; PHASE_COUNT] = [
    Phase::Mutate,
    Phase::Inject,
    Phase::Handoff,
    Phase::Plan,
    Phase::Validate,
    Phase::Route,
    Phase::Stream,
    Phase::VectorDispatch,
    Phase::ShardTopology,
    Phase::ShardInject,
    Phase::ShardPlan,
    Phase::ShardMerge,
    Phase::Ticket,
    Phase::Lock,
    Phase::TenantStep,
    Phase::SliceMerge,
    Phase::Slice,
];

impl Phase {
    /// Stable dense index, usable for per-phase accumulator arrays.
    #[inline(always)]
    pub fn index(self) -> usize {
        self as usize
    }

    /// All phases in index order.
    pub fn all() -> [Phase; PHASE_COUNT] {
        ALL_PHASES
    }

    /// The snake_case name used by every exporter and JSON schema.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Mutate => "mutate",
            Phase::Inject => "inject",
            Phase::Handoff => "handoff",
            Phase::Plan => "plan",
            Phase::Validate => "validate",
            Phase::Route => "route",
            Phase::Stream => "stream",
            Phase::VectorDispatch => "vector_dispatch",
            Phase::ShardTopology => "shard_topology",
            Phase::ShardInject => "shard_inject",
            Phase::ShardPlan => "shard_plan",
            Phase::ShardMerge => "shard_merge",
            Phase::Ticket => "ticket",
            Phase::Lock => "lock",
            Phase::TenantStep => "step",
            Phase::SliceMerge => "merge",
            Phase::Slice => "slice",
        }
    }
}

/// Whether an [`Event`] is a timed span or a point-in-time marker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A completed span: `at_ns..at_ns + dur_ns`.
    Span,
    /// An instant marker; `dur_ns` is zero, `value` carries payload.
    Instant,
}

/// One fixed-size trace record. `Copy` and allocation-free so the
/// ring buffer can hold them inline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Span or instant.
    pub kind: EventKind,
    /// Which phase this record belongs to.
    pub phase: Phase,
    /// Engine step (round) or slice index the record is tagged with.
    pub step: u64,
    /// Start time in nanoseconds relative to the sink's anchor.
    pub at_ns: u64,
    /// Span duration in nanoseconds (zero for instants).
    pub dur_ns: u64,
    /// Structured payload (e.g. the vector dispatch decision).
    pub value: u64,
}

/// The monomorphized probe sink.
///
/// Callers never branch on a runtime flag: every probe helper is
/// guarded by `if Self::ENABLED`, a constant the optimizer folds, so
/// a `NoopSink` instantiation contains no probe code at all. This is
/// the same zero-cost discipline as the `dlb_core::sync` facade.
///
/// Implementations must be **observation-only**: a sink must never
/// change what the instrumented code computes (bit-identity across
/// sinks is pinned by the differential test axis).
pub trait Sink {
    /// Whether probes are live. `false` compiles them all away.
    const ENABLED: bool;

    /// Current time in nanoseconds relative to the sink's anchor.
    fn now_ns(&mut self) -> u64;

    /// Stores one event. Called only when `ENABLED` is true.
    fn record(&mut self, ev: Event);

    /// Timestamp for the start of a span (0 when disabled).
    #[inline(always)]
    fn start(&mut self) -> u64 {
        if Self::ENABLED {
            self.now_ns()
        } else {
            0
        }
    }

    /// Closes a span opened with [`Sink::start`].
    #[inline(always)]
    fn span(&mut self, phase: Phase, step: u64, started_ns: u64) {
        if Self::ENABLED {
            let now = self.now_ns();
            self.record(Event {
                kind: EventKind::Span,
                phase,
                step,
                at_ns: started_ns,
                dur_ns: now.saturating_sub(started_ns),
                value: 0,
            });
        }
    }

    /// Records a point event carrying a structured `value`.
    #[inline(always)]
    fn instant(&mut self, phase: Phase, step: u64, value: u64) {
        if Self::ENABLED {
            let now = self.now_ns();
            self.record(Event {
                kind: EventKind::Instant,
                phase,
                step,
                at_ns: now,
                dur_ns: 0,
                value,
            });
        }
    }
}

/// The disabled sink: every probe compiles to nothing.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl Sink for NoopSink {
    const ENABLED: bool = false;

    #[inline(always)]
    fn now_ns(&mut self) -> u64 {
        0
    }

    #[inline(always)]
    fn record(&mut self, _ev: Event) {}
}

/// A recording sink: fixed-capacity ring buffer of [`Event`]s plus
/// per-phase duration/count accumulators.
///
/// The buffer is allocated once at construction; when full, the
/// oldest events are overwritten (the accumulators keep exact totals
/// regardless). Timestamps are measured from a monotonic anchor taken
/// at construction (or the last [`RingSink::clear`]).
#[derive(Debug)]
pub struct RingSink {
    buf: Vec<Event>,
    head: usize,
    recorded: u64,
    anchor: Instant,
    phase_ns: [u64; PHASE_COUNT],
    phase_counts: [u64; PHASE_COUNT],
}

impl RingSink {
    /// Creates a sink holding at most `capacity` events (min 1).
    pub fn with_capacity(capacity: usize) -> RingSink {
        RingSink {
            buf: Vec::with_capacity(capacity.max(1)),
            head: 0,
            recorded: 0,
            anchor: Instant::now(),
            phase_ns: [0; PHASE_COUNT],
            phase_counts: [0; PHASE_COUNT],
        }
    }

    /// Total events recorded (including any since overwritten).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Events lost to ring overwrite.
    pub fn dropped(&self) -> u64 {
        self.recorded - self.buf.len() as u64
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        if self.buf.len() < self.buf.capacity() {
            self.buf.clone()
        } else {
            let mut out = Vec::with_capacity(self.buf.len());
            out.extend_from_slice(&self.buf[self.head..]);
            out.extend_from_slice(&self.buf[..self.head]);
            out
        }
    }

    /// Exact total nanoseconds spent in `phase` (spans only), counted
    /// over the whole recording, not just retained events.
    pub fn phase_ns(&self, phase: Phase) -> u64 {
        self.phase_ns[phase.index()]
    }

    /// Exact number of events recorded for `phase`.
    pub fn phase_count(&self, phase: Phase) -> u64 {
        self.phase_counts[phase.index()]
    }

    /// Empties the buffer and accumulators and re-anchors the clock.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
        self.recorded = 0;
        self.anchor = Instant::now();
        self.phase_ns = [0; PHASE_COUNT];
        self.phase_counts = [0; PHASE_COUNT];
    }
}

impl Sink for RingSink {
    const ENABLED: bool = true;

    #[inline]
    fn now_ns(&mut self) -> u64 {
        self.anchor.elapsed().as_nanos() as u64
    }

    #[inline]
    fn record(&mut self, ev: Event) {
        self.phase_ns[ev.phase.index()] += ev.dur_ns;
        self.phase_counts[ev.phase.index()] += 1;
        self.recorded += 1;
        if self.buf.len() < self.buf.capacity() {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.buf.len();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_indices_are_dense_and_names_unique() {
        let all = Phase::all();
        assert_eq!(all.len(), PHASE_COUNT);
        for (i, p) in all.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
        let mut names: Vec<&str> = all.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), PHASE_COUNT);
    }

    #[test]
    fn ring_overwrites_oldest_but_keeps_exact_totals() {
        let mut sink = RingSink::with_capacity(4);
        for i in 0..10u64 {
            sink.record(Event {
                kind: EventKind::Span,
                phase: Phase::Plan,
                step: i,
                at_ns: i * 100,
                dur_ns: 5,
                value: 0,
            });
        }
        assert_eq!(sink.recorded(), 10);
        assert_eq!(sink.dropped(), 6);
        let events = sink.events();
        assert_eq!(events.len(), 4);
        // Oldest-first: steps 6..10 survive.
        let steps: Vec<u64> = events.iter().map(|e| e.step).collect();
        assert_eq!(steps, vec![6, 7, 8, 9]);
        assert_eq!(sink.phase_ns(Phase::Plan), 50);
        assert_eq!(sink.phase_count(Phase::Plan), 10);
    }

    #[test]
    fn noop_sink_records_nothing_and_yields_zero_timestamps() {
        let mut sink = NoopSink;
        assert_eq!(sink.start(), 0);
        // These must be no-ops (nothing to assert beyond not crashing:
        // the real guarantee is ENABLED = false folding the guards).
        sink.span(Phase::Plan, 0, 0);
        sink.instant(Phase::VectorDispatch, 0, 7);
        const { assert!(!NoopSink::ENABLED) }
    }

    #[test]
    fn span_helper_records_duration_under_the_right_phase() {
        let mut sink = RingSink::with_capacity(8);
        let t0 = sink.start();
        sink.span(Phase::Route, 3, t0);
        assert_eq!(sink.phase_count(Phase::Route), 1);
        let ev = sink.events()[0];
        assert_eq!(ev.kind, EventKind::Span);
        assert_eq!(ev.phase, Phase::Route);
        assert_eq!(ev.step, 3);
        sink.instant(Phase::VectorDispatch, 3, 42);
        let ev = sink.events()[1];
        assert_eq!(ev.kind, EventKind::Instant);
        assert_eq!(ev.value, 42);
        assert_eq!(ev.dur_ns, 0);
    }

    #[test]
    fn clear_resets_everything() {
        let mut sink = RingSink::with_capacity(2);
        sink.instant(Phase::Slice, 0, 1);
        sink.clear();
        assert_eq!(sink.recorded(), 0);
        assert_eq!(sink.events().len(), 0);
        assert_eq!(sink.phase_count(Phase::Slice), 0);
    }
}
