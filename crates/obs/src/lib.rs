//! # dlb-obs — zero-cost tracing and metrics for the balancing stack
//!
//! Every execution path in the workspace — the instrumented serial
//! round, the plan-free streaming kernel, the vectorized uniform
//! rounds, the sharded barrier protocol and the multi-tenant server —
//! shares one phase vocabulary ([`Phase`]) and one probe mechanism
//! ([`Sink`]). The design follows the `dlb_core::sync` facade
//! precedent from the concurrency gate: the probe surface is a trait
//! with an associated `ENABLED` const, monomorphized into every
//! caller, so that
//!
//! * [`NoopSink`] (`ENABLED = false`) compiles **every** probe to
//!   nothing — the traced entry points with a noop sink produce the
//!   same machine code as the untraced ones, which is what the ≤ 5%
//!   overhead gate in the harness measures; and
//! * [`RingSink`] (`ENABLED = true`) records fixed-size [`Event`]s
//!   into a preallocated ring buffer — no allocation on the hot path,
//!   and **no influence on the computation**: sinks observe loads and
//!   decisions, they never feed back, so traced runs stay bit-identical
//!   to untraced ones (the differential tests pin this).
//!
//! On top of the event stream sits a [`MetricRegistry`] — named
//! monotonic counters, gauges and log-bucketed [`Histogram`]s (HDR
//! style: ≤ 12.5% relative error) that absorb the ad-hoc stats structs
//! scattered across the crates (`VectorStats`, kernel rescan counts,
//! engine scan counters, serve totals). Exporters turn either side
//! into standard formats: JSONL event dumps and chrome://tracing JSON
//! for the event stream ([`export`]), Prometheus-style text exposition
//! for the registry ([`MetricRegistry::render_prometheus`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod export;
mod registry;
mod sink;

pub use export::{chrome_trace, events_jsonl};
pub use registry::{Histogram, MetricRegistry};
pub use sink::{Event, EventKind, NoopSink, Phase, RingSink, Sink, PHASE_COUNT};
