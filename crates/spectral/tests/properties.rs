//! Property tests for the spectral toolkit: operator algebra, spectrum
//! bounds, and agreement between closed forms and power iteration.

use dlb_graph::{generators, BalancingGraph};
use dlb_spectral::{
    closed_form, power, BalancingHorizon, ContinuousDiffusion, SpectralGap, TransitionOperator,
};
use proptest::prelude::*;

proptest! {
    /// P is symmetric: <y, Px> = <x, Py> for arbitrary vectors.
    #[test]
    fn operator_is_self_adjoint(
        n in 6usize..32,
        seed in 0u64..20,
        xs in proptest::collection::vec(-10.0f64..10.0, 4..32),
        ys in proptest::collection::vec(-10.0f64..10.0, 4..32),
    ) {
        let g = generators::random_regular(n, 4, seed).unwrap();
        let gp = BalancingGraph::lazy(g);
        let op = TransitionOperator::new(&gp);
        let x: Vec<f64> = xs.iter().cycle().take(n).copied().collect();
        let y: Vec<f64> = ys.iter().cycle().take(n).copied().collect();
        let px = op.apply_vec(&x);
        let py = op.apply_vec(&y);
        let ypx: f64 = y.iter().zip(&px).map(|(a, b)| a * b).sum();
        let xpy: f64 = x.iter().zip(&py).map(|(a, b)| a * b).sum();
        prop_assert!((ypx - xpy).abs() < 1e-9 * (1.0 + ypx.abs()));
    }

    /// P is doubly stochastic: both row sums (apply to 1) and the mass
    /// of any vector are preserved.
    #[test]
    fn operator_preserves_mass_and_uniformity(
        n in 6usize..32,
        seed in 0u64..20,
        xs in proptest::collection::vec(0.0f64..100.0, 4..32),
    ) {
        let g = generators::random_regular(n, 4, seed).unwrap();
        let gp = BalancingGraph::lazy(g);
        let op = TransitionOperator::new(&gp);
        let ones = vec![1.0; n];
        for v in op.apply_vec(&ones) {
            prop_assert!((v - 1.0).abs() < 1e-12);
        }
        let x: Vec<f64> = xs.iter().cycle().take(n).copied().collect();
        let sum_before: f64 = x.iter().sum();
        let sum_after: f64 = op.apply_vec(&x).iter().sum();
        prop_assert!((sum_before - sum_after).abs() < 1e-9 * (1.0 + sum_before.abs()));
    }

    /// Lazy walks have λ₂ ∈ [0, 1) on connected graphs.
    #[test]
    fn lazy_lambda2_in_unit_interval(n in 8usize..64, seed in 0u64..30) {
        let g = generators::random_regular(n, 4, seed).unwrap();
        prop_assume!(dlb_graph::traversal::is_connected(&g));
        let gp = BalancingGraph::lazy(g);
        let est = power::lambda2(&gp, power::PowerOptions::default());
        prop_assert!(est.lambda2 >= -1e-9, "lambda2 = {}", est.lambda2);
        prop_assert!(est.lambda2 < 1.0 - 1e-6, "lambda2 = {}", est.lambda2);
    }

    /// Power iteration matches the cycle closed form across sizes and
    /// laziness levels.
    #[test]
    fn power_matches_closed_form_cycles(n in 4usize..48, d_self in 2usize..6) {
        let gp = BalancingGraph::with_self_loops(
            generators::cycle(n).unwrap(),
            d_self,
        ).unwrap();
        let exact = closed_form::lambda2_cycle(n, d_self);
        let est = power::lambda2(&gp, power::PowerOptions::default()).lambda2;
        prop_assert!((exact - est).abs() < 1e-6, "n={} d_self={}: {} vs {}", n, d_self, exact, est);
    }

    /// The balancing horizon is monotone in the multiplier and in K.
    #[test]
    fn horizon_monotonicity(
        lambda_milli in 0i32..990,
        n in 4usize..10_000,
        k in 2u64..1_000_000,
    ) {
        let gap = SpectralGap::from_lambda2(f64::from(lambda_milli) / 1000.0);
        let h = BalancingHorizon::new(gap, n, k);
        prop_assert!(h.steps(1.0) <= h.steps(2.0));
        let h_bigger_k = BalancingHorizon::new(gap, n, k.saturating_mul(8));
        prop_assert!(h.steps(1.0) <= h_bigger_k.steps(1.0));
    }

    /// Continuous diffusion: deviation from the mean is non-increasing
    /// and mass is conserved, from arbitrary non-negative starts.
    #[test]
    fn continuous_diffusion_contracts(
        n in 6usize..24,
        seed in 0u64..20,
        xs in proptest::collection::vec(0.0f64..50.0, 4..24),
        steps in 1usize..60,
    ) {
        let g = generators::random_regular(n, 4, seed).unwrap();
        let gp = BalancingGraph::lazy(g);
        let x: Vec<f64> = xs.iter().cycle().take(n).copied().collect();
        let total: f64 = x.iter().sum();
        let mut proc = ContinuousDiffusion::new(gp, x);
        let mut prev = proc.max_deviation();
        for _ in 0..steps {
            proc.step();
            let cur = proc.max_deviation();
            prop_assert!(cur <= prev + 1e-9);
            prev = cur;
        }
        let after: f64 = proc.loads().iter().sum();
        prop_assert!((after - total).abs() < 1e-6 * (1.0 + total));
    }
}

/// `t_mu` matches the paper's 6·ln n/µ at assorted points.
#[test]
fn t_mu_spot_checks() {
    for (lambda2, n) in [(0.5f64, 64usize), (0.9, 256), (0.99, 1024)] {
        let gap = SpectralGap::from_lambda2(lambda2);
        let expect = (6.0 * (n as f64).ln() / (1.0 - lambda2)).ceil() as usize;
        assert_eq!(gap.t_mu(n), expect);
    }
}
