use dlb_graph::BalancingGraph;

/// The transition matrix `P` of the balancing graph `G⁺`, exposed as an
/// implicit matrix-vector operator.
///
/// Following §1.3 of the paper: `P(u, v) = 1/d⁺` for every original edge
/// `(u, v) ∈ E`, `P(u, u) = d°/d⁺` (the self-loops), and `0` otherwise.
/// `P` is symmetric and doubly stochastic because `G` is regular, so its
/// stationary distribution is uniform and `P^∞ x₁ = (x̄, …, x̄)`.
///
/// The operator is never materialised; one application costs
/// `O(n·d)` and borrows the graph, so it can be applied to million-node
/// instances.
///
/// # Example
///
/// ```
/// use dlb_graph::{generators, BalancingGraph};
/// use dlb_spectral::TransitionOperator;
///
/// let gp = BalancingGraph::lazy(generators::cycle(4)?);
/// let p = TransitionOperator::new(&gp);
/// // One step from a point mass: stay with d°/d⁺ = 1/2, spread 1/4 each.
/// let out = p.apply_vec(&[1.0, 0.0, 0.0, 0.0]);
/// assert_eq!(out, vec![0.5, 0.25, 0.0, 0.25]);
/// # Ok::<(), dlb_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct TransitionOperator<'g> {
    gp: &'g BalancingGraph,
}

impl<'g> TransitionOperator<'g> {
    /// Wraps the balancing graph.
    pub fn new(gp: &'g BalancingGraph) -> Self {
        TransitionOperator { gp }
    }

    /// The balancing graph this operator acts on.
    pub fn graph(&self) -> &'g BalancingGraph {
        self.gp
    }

    /// Dimension of the operator (number of nodes).
    pub fn dim(&self) -> usize {
        self.gp.num_nodes()
    }

    /// Computes `out = P·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` or `out` do not have length `n`.
    pub fn apply(&self, x: &[f64], out: &mut [f64]) {
        let n = self.gp.num_nodes();
        assert_eq!(x.len(), n, "input length must be n");
        assert_eq!(out.len(), n, "output length must be n");
        let d_plus = self.gp.degree_plus() as f64;
        let self_weight = self.gp.num_self_loops() as f64 / d_plus;
        let edge_weight = 1.0 / d_plus;
        let graph = self.gp.graph();
        for u in 0..n {
            let mut acc = self_weight * x[u];
            for &v in graph.neighbors(u) {
                acc += edge_weight * x[v as usize];
            }
            out[u] = acc;
        }
    }

    /// Convenience wrapper returning a fresh vector.
    pub fn apply_vec(&self, x: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; x.len()];
        self.apply(x, &mut out);
        out
    }

    /// Computes `P^k · x` using two ping-pong buffers.
    pub fn apply_power(&self, x: &[f64], k: usize) -> Vec<f64> {
        let mut cur = x.to_vec();
        let mut next = vec![0.0; x.len()];
        for _ in 0..k {
            self.apply(&cur, &mut next);
            std::mem::swap(&mut cur, &mut next);
        }
        cur
    }

    /// The entry `P(u, v)` (mostly for tests; prefer [`apply`]).
    ///
    /// [`apply`]: TransitionOperator::apply
    pub fn entry(&self, u: usize, v: usize) -> f64 {
        let d_plus = self.gp.degree_plus() as f64;
        if u == v {
            self.gp.num_self_loops() as f64 / d_plus
        } else if self.gp.graph().has_edge(u, v) {
            1.0 / d_plus
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_graph::generators;

    fn lazy(n: usize) -> BalancingGraph {
        BalancingGraph::lazy(generators::cycle(n).unwrap())
    }

    #[test]
    fn rows_sum_to_one() {
        let gp = lazy(6);
        let p = TransitionOperator::new(&gp);
        let ones = vec![1.0; 6];
        let out = p.apply_vec(&ones);
        for v in out {
            assert!((v - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn preserves_total_mass() {
        let gp = lazy(8);
        let p = TransitionOperator::new(&gp);
        let x = vec![5.0, 0.0, 0.0, 1.0, 0.0, 2.0, 0.0, 0.0];
        let out = p.apply_vec(&x);
        let sum: f64 = out.iter().sum();
        assert!((sum - 8.0).abs() < 1e-12);
    }

    #[test]
    fn symmetric_entries() {
        let gp = BalancingGraph::lazy(generators::petersen());
        let p = TransitionOperator::new(&gp);
        for u in 0..10 {
            for v in 0..10 {
                assert!((p.entry(u, v) - p.entry(v, u)).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn entry_values_match_definition() {
        let gp = lazy(5);
        let p = TransitionOperator::new(&gp);
        assert!((p.entry(0, 0) - 0.5).abs() < 1e-15);
        assert!((p.entry(0, 1) - 0.25).abs() < 1e-15);
        assert!((p.entry(0, 2) - 0.0).abs() < 1e-15);
    }

    #[test]
    fn apply_power_composes() {
        let gp = lazy(6);
        let p = TransitionOperator::new(&gp);
        let x = vec![6.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let two_steps = p.apply_vec(&p.apply_vec(&x));
        assert_eq!(p.apply_power(&x, 2), two_steps);
        assert_eq!(p.apply_power(&x, 0), x);
    }

    #[test]
    fn bare_graph_has_zero_self_weight() {
        let gp = BalancingGraph::bare(generators::cycle(4).unwrap());
        let p = TransitionOperator::new(&gp);
        let out = p.apply_vec(&[1.0, 0.0, 0.0, 0.0]);
        assert_eq!(out, vec![0.0, 0.5, 0.0, 0.5]);
    }

    #[test]
    fn converges_toward_uniform() {
        let gp = lazy(8);
        let p = TransitionOperator::new(&gp);
        let mut x = vec![0.0; 8];
        x[0] = 8.0;
        let out = p.apply_power(&x, 2000);
        for v in out {
            assert!(
                (v - 1.0).abs() < 1e-9,
                "should converge to mean 1.0, got {v}"
            );
        }
    }
}
