//! Exact second eigenvalues for graph families with known spectra.
//!
//! For a d-regular graph `G` with adjacency spectrum `{α_i}`, the
//! balancing graph `G⁺` with `d°` self-loops has transition spectrum
//! `λ_i = (d° + α_i)/d⁺`. All formulas below follow from the classical
//! adjacency spectra (see e.g. Levin–Peres–Wilmer \[14\], Ch. 12):
//!
//! * cycle `C_n`: `α_k = 2·cos(2πk/n)`;
//! * hypercube `Q_dim`: `α_k = dim − 2k`;
//! * torus (side^r): `α = Σ_j 2·cos(2πk_j/side)`;
//! * complete `K_n`: `α ∈ {n−1, −1}`;
//! * complete bipartite `K_{d,d}`: `α ∈ {±d, 0}`;
//! * circulant with offset set `S`: `α_k = Σ_{o∈S} 2·cos(2πko/n)`.
//!
//! Experiments use these instead of power iteration when the spectral
//! gap is `o(1)` (long cycles, large tori), where iterative estimation
//! converges too slowly to be trusted.

use std::f64::consts::TAU;

/// `λ₂` of the lazy cycle `C_n` with `d°` self-loops (`d = 2`).
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn lambda2_cycle(n: usize, d_self: usize) -> f64 {
    assert!(n >= 3, "cycle needs n >= 3");
    let d_plus = (2 + d_self) as f64;
    (d_self as f64 + 2.0 * (TAU / n as f64).cos()) / d_plus
}

/// `λ₂` of the complete graph `K_n` with `d°` self-loops (`d = n−1`).
///
/// The non-principal adjacency eigenvalue is `−1` with multiplicity
/// `n−1`; the returned value is the *largest* non-principal transition
/// eigenvalue `(d° − 1)/d⁺`.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn lambda2_complete(n: usize, d_self: usize) -> f64 {
    assert!(n >= 2, "complete graph needs n >= 2");
    let d_plus = (n - 1 + d_self) as f64;
    (d_self as f64 - 1.0) / d_plus
}

/// `λ₂` of the hypercube `Q_dim` with `d°` self-loops (`d = dim`).
///
/// # Panics
///
/// Panics if `dim == 0`.
pub fn lambda2_hypercube(dim: usize, d_self: usize) -> f64 {
    assert!(dim >= 1, "hypercube needs dim >= 1");
    let d_plus = (dim + d_self) as f64;
    (d_self as f64 + dim as f64 - 2.0) / d_plus
}

/// `λ₂` of the r-dimensional torus with side length `side` and `d°`
/// self-loops (`d = 2r`).
///
/// # Panics
///
/// Panics if `r == 0` or `side < 3`.
pub fn lambda2_torus(r: usize, side: usize, d_self: usize) -> f64 {
    assert!(r >= 1, "torus needs r >= 1");
    assert!(side >= 3, "torus needs side >= 3");
    let d_plus = (2 * r + d_self) as f64;
    let alpha2 = 2.0 * (r as f64 - 1.0) + 2.0 * (TAU / side as f64).cos();
    (d_self as f64 + alpha2) / d_plus
}

/// `λ₂` of the complete bipartite graph `K_{d,d}` with `d°` self-loops.
///
/// The largest non-principal adjacency eigenvalue is 0 (multiplicity
/// 2d−2); note the walk also has eigenvalue `(d° − d)/d⁺` (the
/// bipartite `−d` mode), which dominates in magnitude only when
/// `d° < d` — the returned value is the largest *signed* non-principal
/// eigenvalue, matching the paper's `µ = 1 − λ₂` convention.
///
/// # Panics
///
/// Panics if `d == 0`.
pub fn lambda2_complete_bipartite(d: usize, d_self: usize) -> f64 {
    assert!(d >= 1, "complete bipartite needs d >= 1");
    let d_plus = (d + d_self) as f64;
    d_self as f64 / d_plus
}

/// `λ₂` of a circulant graph on `n` nodes with offset set `offsets` and
/// `d°` self-loops (`d = 2·|offsets|`). Evaluates the exact character
/// sum for every `k = 1..n` and takes the maximum.
///
/// # Panics
///
/// Panics if `offsets` is empty or `n < 3`.
pub fn lambda2_circulant(n: usize, offsets: &[usize], d_self: usize) -> f64 {
    assert!(n >= 3, "circulant needs n >= 3");
    assert!(!offsets.is_empty(), "circulant needs offsets");
    let d_plus = (2 * offsets.len() + d_self) as f64;
    let mut best = f64::NEG_INFINITY;
    for k in 1..n {
        let alpha: f64 = offsets
            .iter()
            .map(|&o| 2.0 * (TAU * (k * o) as f64 / n as f64).cos())
            .sum();
        best = best.max(alpha);
    }
    (d_self as f64 + best) / d_plus
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_lambda2_increases_with_n() {
        let a = lambda2_cycle(8, 2);
        let b = lambda2_cycle(64, 2);
        let c = lambda2_cycle(512, 2);
        assert!(a < b && b < c && c < 1.0);
    }

    #[test]
    fn cycle_gap_scales_inverse_quadratically() {
        // µ(C_n) = (2 − 2cos(2π/n))/d⁺ ≈ (2π²/d⁺)·(2/n²) for large n:
        // quadrupling? doubling n should divide µ by ~4.
        let mu = |n: usize| 1.0 - lambda2_cycle(n, 2);
        let ratio = mu(128) / mu(256);
        assert!((ratio - 4.0).abs() < 0.05, "ratio = {ratio}");
    }

    #[test]
    fn complete_lambda2_small() {
        // K_16, lazy: λ₂ = (15 − 1)/30 wait d° = d = 15 ⇒ (15−1)/30.
        let v = lambda2_complete(16, 15);
        assert!((v - 14.0 / 30.0).abs() < 1e-15);
    }

    #[test]
    fn hypercube_lambda2_formula() {
        // Q_4 lazy (d° = 4): λ₂ = (4 + 2)/8 = 0.75.
        assert!((lambda2_hypercube(4, 4) - 0.75).abs() < 1e-15);
    }

    #[test]
    fn torus_reduces_to_cycle_when_r_is_one() {
        for side in [5usize, 9, 33] {
            assert!(
                (lambda2_torus(1, side, 2) - lambda2_cycle(side, 2)).abs() < 1e-15,
                "side = {side}"
            );
        }
    }

    #[test]
    fn circulant_with_offset_one_matches_cycle() {
        for n in [7usize, 12, 40] {
            assert!(
                (lambda2_circulant(n, &[1], 2) - lambda2_cycle(n, 2)).abs() < 1e-12,
                "n = {n}"
            );
        }
    }

    #[test]
    fn bipartite_lambda2_is_laziness_fraction() {
        assert!((lambda2_complete_bipartite(4, 4) - 0.5).abs() < 1e-15);
        assert!((lambda2_complete_bipartite(4, 0) - 0.0).abs() < 1e-15);
    }

    #[test]
    fn all_values_below_one() {
        assert!(lambda2_cycle(1000, 2) < 1.0);
        assert!(lambda2_complete(100, 99) < 1.0);
        assert!(lambda2_hypercube(10, 10) < 1.0);
        assert!(lambda2_torus(3, 11, 6) < 1.0);
        assert!(lambda2_circulant(100, &[1, 7], 4) < 1.0);
    }
}
