//! Spectral toolkit for diffusion load balancing.
//!
//! The analysis of Berenbrink et al. (PODC 2015) is parameterised
//! throughout by the **spectral gap** `µ = 1 − λ₂` of the transition
//! matrix `P` of the balancing graph `G⁺`, and by the **balancing
//! horizon** `T = O(log(Kn)/µ)` — the time in which the continuous
//! diffusion process balances an initial discrepancy `K` (§1, §2).
//!
//! This crate supplies those quantities:
//!
//! * [`TransitionOperator`] — the matrix `P` of `G⁺` as an implicit
//!   matrix-vector operator (`P(u,u) = d°/d⁺`, `P(u,v) = 1/d⁺` on
//!   edges), never materialised;
//! * [`power`] — deflated power iteration estimating `λ₂` on arbitrary
//!   regular graphs;
//! * [`closed_form`] — exact `λ₂` for the families with known spectra
//!   (cycles, tori, hypercubes, complete and circulant graphs), used by
//!   experiments where power iteration would be slow or ill-conditioned;
//! * [`SpectralGap`] and [`BalancingHorizon`] — the derived quantities
//!   `µ`, `T(K, n, µ)` and the paper's mixing yardstick `t_µ = 6·ln n/µ`;
//! * [`ContinuousDiffusion`] — the continuous reference process `x ← Px`
//!   that every discrete scheme is compared against.
//!
//! # Example
//!
//! ```
//! use dlb_graph::{generators, BalancingGraph};
//! use dlb_spectral::{closed_form, power, SpectralGap};
//!
//! let g = generators::cycle(64)?;
//! let gp = BalancingGraph::lazy(g);
//! let exact = closed_form::lambda2_cycle(64, 2);
//! let est = power::lambda2(&gp, power::PowerOptions::default());
//! assert!((exact - est.lambda2).abs() < 1e-6);
//! let gap = SpectralGap::from_lambda2(exact);
//! assert!(gap.mu > 0.0);
//! # Ok::<(), dlb_graph::GraphError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod closed_form;
mod continuous;
mod gap;
mod operator;
pub mod power;

pub use continuous::ContinuousDiffusion;
pub use gap::{BalancingHorizon, SpectralGap};
pub use operator::TransitionOperator;
