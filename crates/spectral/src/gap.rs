/// The spectral gap `µ = 1 − λ₂` of the transition matrix `P` of `G⁺`.
///
/// Every bound in the paper is stated in terms of `µ`: the continuous
/// process balances in `T = O(log(Kn)/µ)` steps, cumulatively fair
/// balancers reach `O(d·√(log n/µ))` discrepancy, and good s-balancers
/// need an extra `O((d/s)·log²n/µ)` steps (Theorems 2.3 and 3.3).
///
/// # Example
///
/// ```
/// use dlb_spectral::{closed_form, SpectralGap};
///
/// let gap = SpectralGap::from_lambda2(closed_form::lambda2_cycle(64, 2));
/// assert!(gap.mu > 0.0 && gap.mu < 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpectralGap {
    /// The second eigenvalue `λ₂` of `P`.
    pub lambda2: f64,
    /// The gap `µ = 1 − λ₂`.
    pub mu: f64,
}

impl SpectralGap {
    /// Builds the gap from a known `λ₂`.
    ///
    /// # Panics
    ///
    /// Panics if `λ₂` is not in `[-1, 1)` (not a valid sub-principal
    /// eigenvalue of a connected stochastic matrix).
    pub fn from_lambda2(lambda2: f64) -> Self {
        assert!(
            (-1.0..1.0).contains(&lambda2),
            "lambda2 = {lambda2} outside [-1, 1)"
        );
        SpectralGap {
            lambda2,
            mu: 1.0 - lambda2,
        }
    }

    /// The paper's mixing yardstick `t_µ = 6·ln n / µ` (proof of
    /// Theorem 2.3), rounded up.
    pub fn t_mu(&self, n: usize) -> usize {
        ((6.0 * (n as f64).ln()) / self.mu).ceil() as usize
    }
}

/// The balancing horizon `T = ⌈c · ln(K·n)/µ⌉` after which the
/// continuous process (and, per the paper's theorems, the discrete
/// schemes) are measured.
///
/// The paper writes `T = O(log(Kn)/µ)`; the constant is an experiment
/// knob (`multiplier`), defaulting to 1. Experiments that need "after
/// time O(T)" sample at small integer multiples of this horizon.
///
/// # Example
///
/// ```
/// use dlb_spectral::{closed_form, BalancingHorizon, SpectralGap};
///
/// let gap = SpectralGap::from_lambda2(closed_form::lambda2_cycle(32, 2));
/// let horizon = BalancingHorizon::new(gap, 32, 1_000);
/// assert!(horizon.steps(1.0) > 0);
/// assert_eq!(horizon.steps(2.0), 2 * horizon.steps(1.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BalancingHorizon {
    gap: SpectralGap,
    n: usize,
    initial_discrepancy: u64,
}

impl BalancingHorizon {
    /// Creates the horizon for a system of `n` nodes whose initial load
    /// discrepancy is `K = initial_discrepancy` (clamped to ≥ 2 so the
    /// logarithm stays positive).
    pub fn new(gap: SpectralGap, n: usize, initial_discrepancy: u64) -> Self {
        BalancingHorizon {
            gap,
            n,
            initial_discrepancy: initial_discrepancy.max(2),
        }
    }

    /// The spectral gap the horizon was built from.
    pub fn gap(&self) -> SpectralGap {
        self.gap
    }

    /// `⌈multiplier · ln(K·n)/µ⌉`, always at least 1.
    ///
    /// # Panics
    ///
    /// Panics if `multiplier` is not positive.
    pub fn steps(&self, multiplier: f64) -> usize {
        assert!(multiplier > 0.0, "multiplier must be positive");
        let k = self.initial_discrepancy as f64;
        let t = multiplier * (k * self.n as f64).ln() / self.gap.mu;
        t.ceil().max(1.0) as usize
    }

    /// The extra steps Theorem 3.3 grants good s-balancers:
    /// `⌈(d/s)·ln²n/µ⌉`.
    pub fn good_balancer_extra(&self, d: usize, s: usize) -> usize {
        assert!(s > 0, "s must be positive");
        let ln_n = (self.n as f64).ln();
        ((d as f64 / s as f64) * ln_n * ln_n / self.gap.mu).ceil() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gap_complements_lambda2() {
        let g = SpectralGap::from_lambda2(0.75);
        assert!((g.mu - 0.25).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn rejects_lambda2_of_one() {
        let _ = SpectralGap::from_lambda2(1.0);
    }

    #[test]
    fn negative_lambda2_allowed() {
        // Bipartite-ish walks can have λ₂ < 0 when d° < d.
        let g = SpectralGap::from_lambda2(-0.5);
        assert!((g.mu - 1.5).abs() < 1e-15);
    }

    #[test]
    fn horizon_grows_with_discrepancy() {
        let gap = SpectralGap::from_lambda2(0.5);
        let small = BalancingHorizon::new(gap, 100, 10).steps(1.0);
        let large = BalancingHorizon::new(gap, 100, 1_000_000).steps(1.0);
        assert!(large > small);
    }

    #[test]
    fn horizon_scales_inversely_with_gap() {
        let tight = BalancingHorizon::new(SpectralGap::from_lambda2(0.99), 64, 100).steps(1.0);
        let loose = BalancingHorizon::new(SpectralGap::from_lambda2(0.5), 64, 100).steps(1.0);
        assert!(tight > 10 * loose);
    }

    #[test]
    fn horizon_clamps_tiny_discrepancy() {
        let gap = SpectralGap::from_lambda2(0.5);
        // K = 0 would make ln(K·n) = −∞; the clamp keeps it sane.
        let t = BalancingHorizon::new(gap, 64, 0).steps(1.0);
        assert!(t >= 1);
    }

    #[test]
    fn t_mu_matches_formula() {
        let gap = SpectralGap::from_lambda2(0.5);
        let expect = (6.0 * (100.0f64).ln() / 0.5).ceil() as usize;
        assert_eq!(gap.t_mu(100), expect);
    }

    #[test]
    fn good_balancer_extra_decreases_with_s() {
        let gap = SpectralGap::from_lambda2(0.5);
        let h = BalancingHorizon::new(gap, 256, 100);
        let slow = h.good_balancer_extra(8, 1);
        let fast = h.good_balancer_extra(8, 8);
        assert!(slow >= 8 * fast - 8);
    }
}
