use dlb_graph::BalancingGraph;

use crate::TransitionOperator;

/// The continuous (divisible-load) diffusion process `x_{t+1} = P·x_t`.
///
/// This is the idealised reference every discrete scheme is compared
/// against (§1): load is infinitely divisible, each node keeps the
/// `d°/d⁺` fraction and ships `1/d⁺` to each neighbour. It converges to
/// the uniform vector `x̄`, and the time to do so — `T = O(log(Kn)/µ)` —
/// is the horizon at which the paper evaluates all discrete schemes.
///
/// # Example
///
/// ```
/// use dlb_graph::{generators, BalancingGraph};
/// use dlb_spectral::ContinuousDiffusion;
///
/// let gp = BalancingGraph::lazy(generators::cycle(8)?);
/// let mut proc = ContinuousDiffusion::new(gp, vec![8.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
/// let steps = proc.run_until_within(0.01, 100_000).expect("converges");
/// assert!(proc.max_deviation() <= 0.01);
/// assert!(steps > 0);
/// # Ok::<(), dlb_graph::GraphError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ContinuousDiffusion {
    gp: BalancingGraph,
    loads: Vec<f64>,
    scratch: Vec<f64>,
    mean: f64,
    steps: usize,
}

impl ContinuousDiffusion {
    /// Creates the process on `gp` with the given initial load vector.
    ///
    /// # Panics
    ///
    /// Panics if `initial.len() != gp.num_nodes()`.
    pub fn new(gp: BalancingGraph, initial: Vec<f64>) -> Self {
        assert_eq!(
            initial.len(),
            gp.num_nodes(),
            "initial load vector must have one entry per node"
        );
        let mean = initial.iter().sum::<f64>() / initial.len() as f64;
        let scratch = vec![0.0; initial.len()];
        ContinuousDiffusion {
            gp,
            loads: initial,
            scratch,
            mean,
            steps: 0,
        }
    }

    /// Current load vector `x_t`.
    pub fn loads(&self) -> &[f64] {
        &self.loads
    }

    /// The invariant average load `x̄`.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Number of steps performed so far.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Advances one synchronous round.
    pub fn step(&mut self) {
        let op = TransitionOperator::new(&self.gp);
        op.apply(&self.loads, &mut self.scratch);
        std::mem::swap(&mut self.loads, &mut self.scratch);
        self.steps += 1;
    }

    /// Advances `k` rounds.
    pub fn run(&mut self, k: usize) {
        for _ in 0..k {
            self.step();
        }
    }

    /// Runs until `max_deviation() <= epsilon`, up to `max_steps`.
    /// Returns the number of steps taken, or `None` on timeout.
    pub fn run_until_within(&mut self, epsilon: f64, max_steps: usize) -> Option<usize> {
        let start = self.steps;
        while self.max_deviation() > epsilon {
            if self.steps - start >= max_steps {
                return None;
            }
            self.step();
        }
        Some(self.steps - start)
    }

    /// `‖x_t − x̄‖_∞`: the largest deviation of any node from the mean.
    pub fn max_deviation(&self) -> f64 {
        self.loads
            .iter()
            .map(|&x| (x - self.mean).abs())
            .fold(0.0, f64::max)
    }

    /// Continuous discrepancy `max x_t − min x_t`.
    pub fn discrepancy(&self) -> f64 {
        let max = self.loads.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let min = self.loads.iter().copied().fold(f64::INFINITY, f64::min);
        max - min
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_graph::generators;

    fn point_mass(n: usize, total: f64) -> Vec<f64> {
        let mut v = vec![0.0; n];
        v[0] = total;
        v
    }

    fn lazy_cycle(n: usize) -> BalancingGraph {
        BalancingGraph::lazy(generators::cycle(n).unwrap())
    }

    #[test]
    fn mass_is_conserved() {
        let mut p = ContinuousDiffusion::new(lazy_cycle(10), point_mass(10, 100.0));
        p.run(57);
        let total: f64 = p.loads().iter().sum();
        assert!((total - 100.0).abs() < 1e-9);
    }

    #[test]
    fn deviation_is_monotone_nonincreasing() {
        let mut p = ContinuousDiffusion::new(lazy_cycle(12), point_mass(12, 60.0));
        let mut prev = p.max_deviation();
        for _ in 0..200 {
            p.step();
            let cur = p.max_deviation();
            assert!(cur <= prev + 1e-12);
            prev = cur;
        }
    }

    #[test]
    fn converges_within_horizon() {
        use crate::{closed_form, BalancingHorizon, SpectralGap};
        let n = 32;
        let k = 1000.0;
        let mut p = ContinuousDiffusion::new(lazy_cycle(n), point_mass(n, k));
        let gap = SpectralGap::from_lambda2(closed_form::lambda2_cycle(n, 2));
        // After O(log(Kn)/µ) steps the continuous process is balanced up
        // to a constant; use multiplier 2 for slack.
        let horizon = BalancingHorizon::new(gap, n, k as u64).steps(2.0);
        p.run(horizon);
        assert!(
            p.max_deviation() < 1.0,
            "deviation {} after T = {horizon}",
            p.max_deviation()
        );
    }

    #[test]
    fn discrepancy_and_deviation_relate() {
        let mut p = ContinuousDiffusion::new(lazy_cycle(8), point_mass(8, 8.0));
        p.run(3);
        assert!(p.discrepancy() <= 2.0 * p.max_deviation() + 1e-12);
        assert!(p.max_deviation() <= p.discrepancy() + 1e-12);
    }

    #[test]
    fn run_until_within_times_out_gracefully() {
        let mut p = ContinuousDiffusion::new(lazy_cycle(64), point_mass(64, 1e6));
        assert_eq!(p.run_until_within(1e-12, 1), None);
    }

    #[test]
    fn steps_counter_tracks_progress() {
        let mut p = ContinuousDiffusion::new(lazy_cycle(8), point_mass(8, 8.0));
        p.run(5);
        assert_eq!(p.steps(), 5);
    }

    #[test]
    #[should_panic(expected = "one entry per node")]
    fn rejects_wrong_length() {
        let _ = ContinuousDiffusion::new(lazy_cycle(8), vec![1.0; 7]);
    }
}
