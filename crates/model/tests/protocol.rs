//! Exhaustive schedule exploration of the sharded engine's round
//! protocol, plus the mutant witness that shows the checker has teeth.
//!
//! Only compiled under `RUSTFLAGS="--cfg dlb_model"` — without that
//! cfg the `dlb_core::sync` facade is plain `std` and there is nothing
//! to explore (the ungated smoke tests in `dlb-model`'s lib cover the
//! passthrough behaviour).
#![cfg(dlb_model)]

use dlb_core::EngineError;
use dlb_model::{
    mutant_witness_scenario, parallel_outcome, scenarios, serial_outcome, suite_guard, Churn,
    Inject, Scenario, Scheme,
};
use loom::{Builder, FailureKind};

/// The suite-wide exploration configuration: exhaustive DFS at
/// preemption bound 2 (loom's empirical sweet spot — almost every real
/// bug needs at most two preemptive switches), then 32 seeded-random
/// schedules with the bound lifted for tail coverage.
fn builder() -> Builder {
    Builder {
        preemption_bound: 2,
        samples: 32,
        ..Builder::default()
    }
}

/// Explores every schedule of `s`'s parallel run and asserts each one
/// reproduces the serial oracle exactly: same loads, same step count,
/// same graph, same error. A divergence or deadlock panics with the
/// failing schedule and its rendered trace.
fn explore(s: &Scenario) {
    let expected = serial_outcome(s);
    let report = builder().model(|| {
        let got = parallel_outcome(s);
        assert_eq!(got, expected, "schedule diverged from the serial oracle");
    });
    assert!(
        report.complete,
        "{}: DFS was cut short at {} schedules — raise max_schedules",
        s.name, report.schedules
    );
    println!(
        "[model] {:<48} {:>6} schedules exhausted at preemption bound {}, +{} sampled",
        s.name, report.schedules, report.preemption_bound, report.sampled
    );
}

fn explore_by_name(name: &str) {
    let _suite = suite_guard();
    let s = scenarios()
        .into_iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("battery has no scenario named {name}"));
    explore(&s);
}

#[test]
fn closed_fixed_two_shards_matches_serial_on_every_schedule() {
    explore_by_name("closed_fixed_two_shards");
}

#[test]
fn closed_fixed_three_shards_matches_serial_on_every_schedule() {
    explore_by_name("closed_fixed_three_shards");
}

#[test]
fn churn_only_round_matches_serial_on_every_schedule() {
    explore_by_name("churn_only_round");
}

#[test]
fn overdraw_in_a_churning_round_terminates_on_every_schedule() {
    explore_by_name("overdraw_in_a_churning_round_without_injection");
}

#[test]
fn negative_seed_under_valid_churn_orders_errors_like_serial() {
    explore_by_name("negative_seed_under_valid_churn");
}

#[test]
fn negative_seed_under_rejected_churn_orders_errors_like_serial() {
    explore_by_name("negative_seed_under_rejected_churn");
}

#[test]
fn injection_round_matches_serial_on_every_schedule() {
    explore_by_name("injection_round");
}

#[test]
fn asleep_node_handoff_matches_serial_on_every_schedule() {
    explore_by_name("asleep_node_handoff");
}

/// A scheme that panics mid-plan must surface as `WorkerPanic` with the
/// round rolled back whole, under **every** schedule — no deadlock, no
/// stranded worker, no half-applied flows. (There is no serial oracle
/// here: the serial path would genuinely propagate the panic, so the
/// expectation is written out by hand.)
#[test]
fn worker_panic_is_contained_under_every_schedule() {
    let _suite = suite_guard();
    let s = Scenario {
        name: "worker_panic_mid_plan",
        n: 8,
        loads: vec![4; 8],
        scheme: Scheme::PanicAt(1),
        churn: Churn::None,
        inject: Inject::None,
        steps: 1,
        threads: 2,
    };
    let report = builder().model(|| {
        let got = parallel_outcome(&s);
        match &got.err {
            Some(EngineError::WorkerPanic { step: 1, message }) => {
                assert!(message.contains("injected panic at node 1"), "{message}");
            }
            other => panic!("expected WorkerPanic at step 1, got {other:?}"),
        }
        assert_eq!(got.steps, 0, "failed round must not count");
        assert_eq!(got.loads, vec![4i64; 8], "failed round must roll back");
    });
    assert!(report.complete);
    println!(
        "[model] {:<48} {:>6} schedules exhausted at preemption bound {}, +{} sampled",
        s.name, report.schedules, report.preemption_bound, report.sampled
    );
}

/// Resets the mutant switch even if the test panics mid-way, so a
/// failure here cannot poison later explorations.
struct MutantFlag;

impl MutantFlag {
    fn set() -> Self {
        dlb_core::sync::model_hooks::TOPO_ABORT_READS_FAILED
            .store(true, std::sync::atomic::Ordering::SeqCst);
        MutantFlag
    }
}

impl Drop for MutantFlag {
    fn drop(&mut self) {
        dlb_core::sync::model_hooks::TOPO_ABORT_READS_FAILED
            .store(false, std::sync::atomic::Ordering::SeqCst);
    }
}

/// The PR 5 regression, reintroduced behind a model-only switch: if the
/// post-churn abort check reads `failed` instead of `topo_failed`, a
/// fast worker that errors during planning can flip `failed` before a
/// slow peer performs its topology-abort check; the peer then exits
/// early and strands the fast worker at the round barrier. The checker
/// must find that deadlock, print the schedule, and replay it; with
/// the switch off the identical scenario must pass clean.
#[test]
fn mutant_topo_abort_reading_failed_is_caught_with_a_schedule() {
    let _suite = suite_guard();
    let s = mutant_witness_scenario();

    let flag = MutantFlag::set();
    let failure = Builder {
        preemption_bound: 2,
        samples: 0,
        ..Builder::default()
    }
    .check(|| {
        let _ = parallel_outcome(&s);
    })
    .expect_err("the mutant must deadlock on some schedule");
    assert_eq!(failure.kind, FailureKind::Deadlock, "{failure}");
    assert!(
        failure.trace.iter().any(|line| line.contains("DEADLOCK")),
        "trace must mark the stuck state:\n{failure}"
    );
    println!(
        "[model] mutant caught after {} schedule(s):",
        failure.schedules_explored
    );
    println!("{failure}");

    // The reported schedule is a real witness: replaying exactly it
    // reproduces the deadlock.
    let replayed = Builder::replay(failure.schedule.clone())
        .check(|| {
            let _ = parallel_outcome(&s);
        })
        .expect_err("replaying the witness schedule must deadlock again");
    assert_eq!(replayed.kind, FailureKind::Deadlock);
    drop(flag);

    // With the fix back in place the identical scenario is clean on
    // every schedule.
    let expected = serial_outcome(&s);
    let report = Builder {
        preemption_bound: 2,
        samples: 0,
        ..Builder::default()
    }
    .model(|| {
        assert_eq!(parallel_outcome(&s), expected);
    });
    assert!(report.complete);
}

/// The serve-layer batch scheduler (PR 9): per-tenant outcomes must
/// equal the serial sweep under **every** explored interleaving of
/// the ticket counter and the per-tenant mutexes — two workers racing
/// over a three-tenant fleet that spans closed, injecting and
/// churning rounds. A diverging tenant, a lost ticket (tenant served
/// twice or skipped) or a deadlocked worker all fail here.
#[test]
fn serve_scheduler_matches_serial_on_every_schedule() {
    let _suite = suite_guard();
    let expected = dlb_model::serve_outcomes(1, 1, 2);
    let report = builder().model(|| {
        let got = dlb_model::serve_outcomes(2, 1, 2);
        assert_eq!(
            got, expected,
            "a scheduler interleaving changed a tenant outcome"
        );
    });
    assert!(
        report.complete,
        "serve scheduler: DFS was cut short at {} schedules",
        report.schedules
    );
    println!(
        "[model] {:<48} {:>6} schedules exhausted at preemption bound {}, +{} sampled",
        "serve_scheduler_two_workers", report.schedules, report.preemption_bound, report.sampled
    );
}
