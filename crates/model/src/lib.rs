//! Model-checking suite for the sharded engine.
//!
//! This crate drives **the real engine code** — not a protocol mock —
//! through every thread interleaving of small configurations, via the
//! [`dlb_core::sync`] facade and the vendored `loom` shim. It compiles
//! in two modes:
//!
//! * plain `cargo test -p dlb-model`: the facade re-exports `std`, the
//!   model tests compile away, and only the passthrough smoke tests
//!   run — this is what tier-1 sees;
//! * `RUSTFLAGS="--cfg dlb_model" cargo test -p dlb-model --release`:
//!   the facade routes to the shim and the `protocol` test file
//!   explores every scenario below under a preemption-bounded
//!   exhaustive DFS plus seeded random sampling, asserting that every
//!   schedule produces the exact serial outcome (loads, step count,
//!   graph, error) with no deadlock and no stranded worker.
//!
//! The scenarios mirror the differential battery's anchors at model-
//! checkable size: `n = 8`, 2–3 shards, one or two rounds — small
//! enough that the DFS exhausts the schedule space, large enough that
//! every protocol phase (topology drive/broadcast, injection
//! publish/assemble/scatter, plan/validate, the abort checks, the
//! dirty-flag merge) is on the explored path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dlb_core::schemes::SendFloor;
use dlb_core::{
    Balancer, Engine, EngineError, FlowPlan, LoadVector, ShardedBalancer, TopologyEvent,
    TopologySchedule, Workload,
};
use dlb_graph::{generators, BalancingGraph, RegularGraph};

/// Serialises scenario explorations: the mutant switch in
/// `dlb_core::sync::model_hooks` is process-global, so a test must
/// hold this guard across its *set flag → explore → reset* window.
pub fn suite_guard() -> std::sync::MutexGuard<'static, ()> {
    static SUITE: std::sync::Mutex<()> = std::sync::Mutex::new(());
    // A poisoned guard only means a previous test failed; the () state
    // cannot be inconsistent.
    SUITE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The balancing scheme a scenario runs.
#[derive(Debug, Clone, Copy)]
pub enum Scheme {
    /// The paper's SEND(⌊x/d⁺⌋): never errors on non-negative loads.
    SendFloor,
    /// The differential battery's deliberately fragile scheme: every
    /// non-empty node claims 3 tokens on port 0 while declaring itself
    /// non-overdrawing, so any load below 3 is a clean `Overdraw`.
    Overdraw3,
    /// SEND(⌊x/d⁺⌋) that panics when asked to plan the given node —
    /// the worker-panic containment probe.
    PanicAt(usize),
}

/// A deliberately fragile scheme (see the differential battery's
/// `Const3`): sends 3 tokens over port 0 regardless of load.
struct Overdraw3;

impl Balancer for Overdraw3 {
    fn name(&self) -> &'static str {
        "overdraw-3"
    }
    fn is_stateless(&self) -> bool {
        true
    }
    fn plan(&mut self, gp: &BalancingGraph, loads: &LoadVector, plan: &mut FlowPlan) {
        for u in 0..gp.num_nodes() {
            if loads.get(u) != 0 {
                self.plan_node(gp, u, loads.get(u), plan.node_mut(u));
            }
        }
    }
}

impl ShardedBalancer for Overdraw3 {
    fn plan_node(&self, _gp: &BalancingGraph, _u: usize, _load: i64, flows: &mut [u64]) {
        flows.fill(0);
        flows[0] = 3;
    }
}

/// SEND(⌊x/d⁺⌋) that panics on one node, violating the no-panic
/// contract on purpose.
struct PanicAt(usize);

impl Balancer for PanicAt {
    fn name(&self) -> &'static str {
        "panic-at"
    }
    fn plan(&mut self, gp: &BalancingGraph, loads: &LoadVector, plan: &mut FlowPlan) {
        for u in 0..gp.num_nodes() {
            if loads.get(u) != 0 {
                self.plan_node(gp, u, loads.get(u), plan.node_mut(u));
            }
        }
    }
}

impl ShardedBalancer for PanicAt {
    fn plan_node(&self, gp: &BalancingGraph, u: usize, load: i64, flows: &mut [u64]) {
        if u == self.0 {
            // resume_unwind rather than panic! so the process panic
            // hook stays quiet while the model explores thousands of
            // schedules; the engine's containment sees the same
            // unwind either way.
            std::panic::resume_unwind(Box::new(format!("injected panic at node {u}")));
        }
        SendFloor::new().plan_node(gp, u, load, flows);
    }
}

impl Scheme {
    fn make(self) -> Box<dyn ShardedBalancer> {
        match self {
            Scheme::SendFloor => Box::new(SendFloor::new()),
            Scheme::Overdraw3 => Box::new(Overdraw3),
            Scheme::PanicAt(u) => Box::new(PanicAt(u)),
        }
    }
}

/// The topology churn a scenario applies.
#[derive(Debug, Clone, Copy)]
pub enum Churn {
    /// Fixed topology: the closed-system fast path (no topology
    /// phases, no replicas).
    None,
    /// A valid 2-swap at round 1 (edges (1,2)/(5,6) of the 8-cycle).
    SwapAt1,
    /// A swap of an absent edge at round 1: rejected, `Topology` error.
    BadSwapAt1,
    /// Sleeps the given node at round 1, forcing the failure-handoff
    /// path through the injection phases of every later round.
    SleepAt1(usize),
}

struct ChurnSchedule(Churn);

impl TopologySchedule for ChurnSchedule {
    fn label(&self) -> String {
        format!("{:?}", self.0)
    }
    fn events(&mut self, round: usize, g: &RegularGraph, out: &mut Vec<TopologyEvent>) {
        if round != 1 {
            return;
        }
        match self.0 {
            Churn::None => {}
            Churn::SwapAt1 => {
                if g.has_edge(1, 2) && g.has_edge(5, 6) {
                    out.push(TopologyEvent::Swap {
                        a: 1,
                        b: 2,
                        c: 5,
                        d: 6,
                    });
                }
            }
            Churn::BadSwapAt1 => out.push(TopologyEvent::Swap {
                a: 0,
                b: 2,
                c: 4,
                d: 6,
            }),
            Churn::SleepAt1(node) => out.push(TopologyEvent::Sleep { node }),
        }
    }
}

impl Churn {
    fn make(self) -> Option<Box<dyn TopologySchedule>> {
        match self {
            Churn::None => None,
            other => Some(Box::new(ChurnSchedule(other))),
        }
    }
}

/// The workload a scenario injects.
#[derive(Debug, Clone, Copy)]
pub enum Inject {
    /// Closed system.
    None,
    /// Adds the given delta to node 0 every round.
    PulseNode0(i64),
}

struct Pulse(i64);

impl Workload for Pulse {
    fn label(&self) -> String {
        format!("pulse({})", self.0)
    }
    fn inject(&mut self, _round: usize, _loads: &[i64], deltas: &mut [i64]) {
        deltas[0] += self.0;
    }
}

impl Inject {
    fn make(self) -> Option<Box<dyn Workload>> {
        match self {
            Inject::None => None,
            Inject::PulseNode0(d) => Some(Box::new(Pulse(d))),
        }
    }
}

/// One model-checked configuration of the sharded engine.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Name used in reports.
    pub name: &'static str,
    /// Cycle size (the graph is always the lazy `n`-cycle).
    pub n: usize,
    /// Initial loads (`len == n`).
    pub loads: Vec<i64>,
    /// The scheme under test.
    pub scheme: Scheme,
    /// Topology churn.
    pub churn: Churn,
    /// Workload injection.
    pub inject: Inject,
    /// Rounds to attempt.
    pub steps: usize,
    /// Worker threads (= shards) for the parallel run.
    pub threads: usize,
}

impl Scenario {
    fn graph(&self) -> BalancingGraph {
        BalancingGraph::lazy(generators::cycle(self.n).expect("cycle(n) is valid for n >= 3"))
    }
}

/// Everything an engine run leaves behind, for exact comparison.
#[derive(Debug, PartialEq)]
pub struct Outcome {
    /// Final loads.
    pub loads: Vec<i64>,
    /// Completed rounds.
    pub steps: usize,
    /// The run's error, if any.
    pub err: Option<EngineError>,
    /// The post-run graph (churn applied, failed rounds rolled back).
    pub graph: BalancingGraph,
}

/// Runs the scenario on the serial reference path ([`Engine::step_dyn`]
/// round by round) — the oracle every schedule of the parallel run
/// must reproduce bit for bit.
pub fn serial_outcome(s: &Scenario) -> Outcome {
    let mut engine = Engine::new(s.graph(), LoadVector::new(s.loads.clone()));
    let mut scheme = s.scheme.make();
    let mut churn = s.churn.make();
    let mut inject = s.inject.make();
    let mut err = None;
    for _ in 0..s.steps {
        let balancer: &mut dyn Balancer = &mut *scheme;
        if let Err(e) = engine.step_dyn(balancer, churn.as_deref_mut(), inject.as_deref_mut()) {
            err = Some(e);
            break;
        }
    }
    Outcome {
        loads: engine.loads().as_slice().to_vec(),
        steps: engine.step_count(),
        err,
        graph: engine.graph().clone(),
    }
}

/// Runs the scenario on the sharded path. Inside `loom::model` every
/// synchronisation point becomes an explored choice; outside it the
/// facade passes through to `std` and this is an ordinary run.
pub fn parallel_outcome(s: &Scenario) -> Outcome {
    let mut engine = Engine::new(s.graph(), LoadVector::new(s.loads.clone()));
    let scheme = s.scheme.make();
    let mut churn = s.churn.make();
    let mut inject = s.inject.make();
    let err = engine
        .run_parallel_dyn(
            &*scheme,
            s.steps,
            s.threads,
            churn.as_deref_mut(),
            inject.as_deref_mut(),
        )
        .err();
    Outcome {
        loads: engine.loads().as_slice().to_vec(),
        steps: engine.step_count(),
        err,
        graph: engine.graph().clone(),
    }
}

/// The standard battery: every protocol phase of the sharded runner is
/// on some scenario's explored path. Kept as data so the protocol
/// tests, the docs and the experiment report enumerate the same list.
#[must_use]
pub fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "closed_fixed_two_shards",
            n: 8,
            loads: vec![9, 1, 4, 4, 4, 4, 4, 2],
            scheme: Scheme::SendFloor,
            churn: Churn::None,
            inject: Inject::None,
            steps: 1,
            threads: 2,
        },
        Scenario {
            name: "closed_fixed_three_shards",
            n: 8,
            loads: vec![9, 1, 4, 4, 4, 4, 4, 2],
            scheme: Scheme::SendFloor,
            churn: Churn::None,
            inject: Inject::None,
            steps: 1,
            threads: 3,
        },
        Scenario {
            name: "churn_only_round",
            n: 8,
            loads: vec![6, 2, 4, 4, 4, 4, 4, 4],
            scheme: Scheme::SendFloor,
            churn: Churn::SwapAt1,
            inject: Inject::None,
            steps: 1,
            threads: 2,
        },
        Scenario {
            name: "overdraw_in_a_churning_round_without_injection",
            n: 8,
            loads: vec![2; 8],
            scheme: Scheme::Overdraw3,
            churn: Churn::SwapAt1,
            inject: Inject::None,
            steps: 1,
            threads: 2,
        },
        Scenario {
            name: "negative_seed_under_valid_churn",
            n: 8,
            loads: vec![5, -1, 3, 3, 3, 3, 3, 3],
            scheme: Scheme::SendFloor,
            churn: Churn::SwapAt1,
            inject: Inject::None,
            steps: 1,
            threads: 2,
        },
        Scenario {
            name: "negative_seed_under_rejected_churn",
            n: 8,
            loads: vec![5, -1, 3, 3, 3, 3, 3, 3],
            scheme: Scheme::SendFloor,
            churn: Churn::BadSwapAt1,
            inject: Inject::None,
            steps: 1,
            threads: 2,
        },
        Scenario {
            name: "injection_round",
            n: 8,
            loads: vec![4; 8],
            scheme: Scheme::SendFloor,
            churn: Churn::None,
            inject: Inject::PulseNode0(2),
            steps: 1,
            threads: 2,
        },
        Scenario {
            name: "asleep_node_handoff",
            n: 8,
            loads: vec![4; 8],
            scheme: Scheme::SendFloor,
            churn: Churn::SleepAt1(2),
            inject: Inject::None,
            steps: 1,
            threads: 2,
        },
    ]
}

/// The scenario the topology-abort mutant deadlocks on: a plan-phase
/// error inside a churn-only round, where no injection barrier
/// separates the topology abort check from a fast peer's `failed`
/// store.
#[must_use]
pub fn mutant_witness_scenario() -> Scenario {
    scenarios()
        .into_iter()
        .find(|s| s.name == "overdraw_in_a_churning_round_without_injection")
        .expect("battery contains the witness scenario")
}

/// The serve-scheduler battery (PR 9): a tiny mixed fleet for
/// exploring the batch scheduler's protocol in `dlb-serve` — one
/// ticket counter partitioning tenant indices between workers, one
/// mutex per tenant. Three tenants cover the interesting strata: a
/// closed static run, an injecting run, and a churning run; under
/// loom every interleaving of ticket claims and lock acquisitions is
/// explored.
#[must_use]
pub fn serve_fleet() -> Vec<dlb_serve::Tenant> {
    let schemes = [
        dlb_serve::SchemeKind::SendFloor,
        dlb_serve::SchemeKind::RotorRouter,
        dlb_serve::SchemeKind::SendRound,
    ];
    schemes
        .iter()
        .enumerate()
        .map(|(i, &scheme)| {
            let gp = BalancingGraph::lazy(generators::cycle(4).expect("cycle(4) is valid"));
            let workload =
                (i == 1).then_some(dlb_scenario::WorkloadSpec::Steady { rate: 2, seed: 3 });
            let schedule = if i == 2 {
                dlb_topology::ScheduleSpec::Periodic {
                    period: 1,
                    swaps: 1,
                    seed: 4,
                }
            } else {
                dlb_topology::ScheduleSpec::Static
            };
            dlb_serve::Tenant::new(
                gp,
                LoadVector::point_mass(4, 24 + i as i64),
                scheme,
                workload,
                schedule,
            )
            .expect("fleet specs are well-formed")
        })
        .collect()
}

/// Runs the serve fleet through `slices` scheduler slices of `rounds`
/// rounds at the given worker count and returns the per-tenant
/// outcomes. `threads <= 1` is the inline serial sweep — the oracle
/// every worker interleaving must reproduce exactly.
#[must_use]
pub fn serve_outcomes(
    threads: usize,
    slices: usize,
    rounds: usize,
) -> Vec<dlb_serve::TenantOutcome> {
    let server = dlb_serve::Server::new(serve_fleet());
    for _ in 0..slices {
        server.run_slice(threads, rounds);
    }
    server
        .into_tenants()
        .iter()
        .map(dlb_serve::Tenant::outcome)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Passthrough sanity (runs under tier-1, no model cfg): the
    /// parallel path matches the serial oracle on every scenario in
    /// ordinary execution. Under `--cfg dlb_model` the protocol tests
    /// strengthen this to *every explored schedule*.
    #[test]
    fn battery_matches_serial_outside_the_model() {
        for s in scenarios() {
            let expected = serial_outcome(&s);
            let got = parallel_outcome(&s);
            assert_eq!(got, expected, "{}", s.name);
        }
    }

    #[test]
    fn battery_covers_both_shard_counts_and_every_phase() {
        let battery = scenarios();
        assert!(battery.len() >= 6, "acceptance floor: at least 6 configs");
        assert!(battery.iter().any(|s| s.threads == 3));
        assert!(battery.iter().any(|s| matches!(s.churn, Churn::SwapAt1)));
        assert!(battery.iter().any(|s| matches!(s.churn, Churn::BadSwapAt1)));
        assert!(battery
            .iter()
            .any(|s| matches!(s.churn, Churn::SleepAt1(_))));
        assert!(battery
            .iter()
            .any(|s| matches!(s.inject, Inject::PulseNode0(_))));
        assert!(battery
            .iter()
            .any(|s| matches!(s.scheme, Scheme::Overdraw3)));
    }

    /// Passthrough sanity for the serve scheduler: any worker count
    /// reproduces the serial sweep's per-tenant outcomes, and every
    /// journal still replays. Under `--cfg dlb_model` the protocol
    /// tests strengthen this to every explored interleaving.
    #[test]
    fn serve_scheduler_matches_serial_outside_the_model() {
        let expected = serve_outcomes(1, 2, 2);
        for threads in [2usize, 3] {
            assert_eq!(serve_outcomes(threads, 2, 2), expected, "threads={threads}");
        }
        // The fleet must actually exercise injection and churn.
        assert!(expected.iter().any(|o| o.injected_total != 0));
        assert!(expected.iter().any(|o| o.topology_events_applied > 0));
    }

    #[test]
    fn expected_errors_match_the_anchors() {
        let battery = scenarios();
        let by_name = |name: &str| {
            battery
                .iter()
                .find(|s| s.name == name)
                .expect("scenario present")
        };
        let overdraw = serial_outcome(by_name("overdraw_in_a_churning_round_without_injection"));
        assert!(
            matches!(overdraw.err, Some(EngineError::Overdraw { step: 1, .. })),
            "{overdraw:?}"
        );
        assert_eq!(overdraw.steps, 0);
        let neg = serial_outcome(by_name("negative_seed_under_valid_churn"));
        assert_eq!(
            neg.err,
            Some(EngineError::NegativeLoad {
                node: 1,
                load: -1,
                step: 1
            })
        );
        let topo = serial_outcome(by_name("negative_seed_under_rejected_churn"));
        assert!(
            matches!(topo.err, Some(EngineError::Topology { step: 1, .. })),
            "{topo:?}"
        );
    }
}
