//! Theorem 4.2: deterministic stateless schemes can be stuck at
//! discrepancy `Ω(d)`.
//!
//! The construction (Appendix C.2): take the circulant graph where `i`
//! and `j` are adjacent iff `(i − j) mod n ∈ {±1, …, ±⌊d/2⌋}` (plus an
//! antipodal matching for odd `d`), so the nodes `C = {0, …, ⌊d/2⌋−1}`
//! sit inside a clique-like neighbourhood. Load every node of `C` with
//! `ℓ = |C| − 1` tokens and everything else with 0.
//!
//! A deterministic stateless scheme sends, from any node at load `ℓ`, a
//! fixed multiset of per-port amounts `p₁, …, p_d` with at most `ℓ`
//! positive entries; the adversary (who controls the port-to-neighbour
//! assignment) routes the positive amounts onto clique-internal edges,
//! so the load pattern reproduces itself forever: discrepancy `ℓ =
//! ⌊d/2⌋ − 1 = Ω(d)` for all time.
//!
//! For the concrete stateless schemes in this library — SEND(⌊x/d⁺⌋)
//! and SEND([x/d⁺]) — the trap is even simpler: at load
//! `ℓ < d⁺/2` they send *nothing* over original edges, so the initial
//! state is already a fixed point and no adversarial routing is needed.
//! The tests (and experiment E6) verify this, and verify the contrast
//! the theorem implies: the *stateful* rotor-router escapes the same
//! instance, as does the *randomized* stateless scheme of \[5\].

use dlb_core::LoadVector;
use dlb_graph::{generators, BalancingGraph, GraphError, RegularGraph};

/// A ready-to-run Theorem 4.2 instance.
#[derive(Debug, Clone)]
pub struct Theorem42Instance {
    /// The clique-circulant original graph.
    pub graph: RegularGraph,
    /// Initial loads: `ℓ = ⌊d/2⌋ − 1` on the clique `C`, 0 elsewhere.
    pub initial: LoadVector,
    /// The per-clique-node load `ℓ` (also the stuck discrepancy).
    pub trap_load: i64,
    /// The clique nodes `C = {0, …, ⌊d/2⌋−1}`.
    pub clique_size: usize,
}

impl Theorem42Instance {
    /// The paper's lazy balancing graph for this instance (`d° = d`).
    pub fn lazy_graph(&self) -> BalancingGraph {
        BalancingGraph::lazy(self.graph.clone())
    }

    /// The discrepancy the trap maintains: `ℓ = ⌊d/2⌋ − 1`.
    pub fn stuck_discrepancy(&self) -> i64 {
        self.trap_load
    }
}

/// Builds the Theorem 4.2 trap on `n` nodes with degree `d`.
///
/// # Errors
///
/// Returns an error for parameters the clique-circulant generator
/// rejects, or if `d < 4` (the trap load `⌊d/2⌋ − 1` would be 0 and
/// the instance trivial).
pub fn instance(n: usize, d: usize) -> Result<Theorem42Instance, GraphError> {
    if d < 4 {
        return Err(GraphError::InvalidParameters {
            reason: format!("theorem 4.2 needs d >= 4 for a non-trivial trap, got {d}"),
        });
    }
    let graph = generators::clique_circulant(n, d)?;
    let clique_size = d / 2;
    let trap_load = (clique_size - 1) as i64;
    let mut loads = vec![0i64; n];
    for load in loads.iter_mut().take(clique_size) {
        *load = trap_load;
    }
    Ok(Theorem42Instance {
        graph,
        initial: LoadVector::new(loads),
        trap_load,
        clique_size,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_core::schemes::{RandomizedExtraTokens, RotorRouter, SendFloor, SendRound};
    use dlb_core::{Balancer, Engine};
    use dlb_graph::PortOrder;

    fn run_scheme(inst: &Theorem42Instance, bal: &mut dyn Balancer, steps: usize) -> i64 {
        let gp = inst.lazy_graph();
        let mut engine = Engine::new(gp, inst.initial.clone());
        engine.run(bal, steps).unwrap();
        engine.loads().discrepancy()
    }

    #[test]
    fn instance_shape() {
        let inst = instance(40, 8).unwrap();
        assert_eq!(inst.clique_size, 4);
        assert_eq!(inst.trap_load, 3);
        assert_eq!(inst.initial.total(), 12);
        assert_eq!(inst.initial.discrepancy(), 3);
    }

    #[test]
    fn stateless_send_schemes_are_stuck_forever() {
        let inst = instance(40, 8).unwrap();
        assert_eq!(
            run_scheme(&inst, &mut SendFloor::new(), 500),
            inst.stuck_discrepancy(),
            "SEND(floor) must not move sub-threshold loads"
        );
        assert_eq!(
            run_scheme(&inst, &mut SendRound::new(), 500),
            inst.stuck_discrepancy(),
            "SEND(round) must not move sub-threshold loads"
        );
    }

    #[test]
    fn stuck_state_is_a_fixed_point_not_just_same_discrepancy() {
        let inst = instance(40, 8).unwrap();
        let gp = inst.lazy_graph();
        let mut engine = Engine::new(gp, inst.initial.clone());
        engine.run(&mut SendFloor::new(), 100).unwrap();
        assert_eq!(engine.loads(), &inst.initial);
    }

    #[test]
    fn stateful_rotor_router_escapes_the_trap() {
        let inst = instance(40, 8).unwrap();
        let gp = inst.lazy_graph();
        let mut rotor = RotorRouter::new(&gp, PortOrder::Sequential).unwrap();
        let mut engine = Engine::new(gp, inst.initial.clone());
        engine.run(&mut rotor, 500).unwrap();
        assert!(
            engine.loads().discrepancy() < inst.stuck_discrepancy(),
            "rotor-router should spread the trapped tokens, got {}",
            engine.loads().discrepancy()
        );
    }

    #[test]
    fn randomized_stateless_escapes_the_trap() {
        // Theorem 4.2 is about *deterministic* stateless schemes; the
        // randomized stateless scheme of [5] escapes. "Escapes" means
        // the trap is not a fixed point of the randomized dynamics —
        // the discrepancy drops below ℓ along the trajectory — not that
        // it is below ℓ at one arbitrary final step (the 12 wandering
        // tokens re-collide on a node every so often).
        let inst = instance(40, 8).unwrap();
        let gp = inst.lazy_graph();
        let mut bal = RandomizedExtraTokens::new(17);
        let mut engine = Engine::new(gp, inst.initial.clone());
        let mut min_discrepancy = engine.loads().discrepancy();
        for _ in 0..500 {
            let summary = engine.step(&mut bal).unwrap();
            min_discrepancy = min_discrepancy.min(summary.discrepancy);
        }
        assert!(
            min_discrepancy < inst.stuck_discrepancy(),
            "randomized scheme never left the trap: min discrepancy {min_discrepancy}"
        );
    }

    #[test]
    fn trap_scales_with_degree() {
        for d in [4usize, 8, 16] {
            let inst = instance(6 * d, d).unwrap();
            assert_eq!(inst.stuck_discrepancy(), (d / 2 - 1) as i64);
            assert_eq!(
                run_scheme(&inst, &mut SendFloor::new(), 100),
                inst.stuck_discrepancy(),
                "d = {d}"
            );
        }
    }

    #[test]
    fn rejects_tiny_degree() {
        assert!(instance(20, 2).is_err());
        assert!(instance(20, 3).is_err());
    }
}
