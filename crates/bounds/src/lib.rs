//! The lower-bound constructions of Section 4 of Berenbrink et al.
//! (PODC 2015), as runnable instances.
//!
//! Each construction produces a concrete `(graph, initial loads,
//! balancer)` triple whose bad behaviour is *exactly invariant* — a
//! fixed point or a 2-periodic orbit of the balancing dynamics — so the
//! lower bound can be verified by simulation rather than argued:
//!
//! * [`thm41`] — a **round-fair but cumulatively unfair** balancer
//!   frozen in a steady state with discrepancy `Ω(d·diam(G))`
//!   (Theorem 4.1): dropping the cumulative-fairness condition of
//!   Definition 2.1 destroys Theorem 2.3.
//! * [`thm42`] — the **stateless trap** (Theorem 4.2): on the
//!   clique-circulant graph, every deterministic stateless scheme can
//!   be stuck at discrepancy `Ω(d)` forever, while stateful schemes
//!   (the rotor-router) escape the very same instance.
//! * [`thm43`] — the **two-periodic rotor-router orbit** (Theorem 4.3):
//!   without self-loops, on a non-bipartite graph, an adversarial
//!   initial state keeps the rotor-router's discrepancy at
//!   `Ω(d·φ(G))`, where `2φ(G)+1` is the odd girth.
//!
//! # A note on Theorem 4.3's construction
//!
//! The paper sets `f₀(v₁,v₂) = L` "if `b(v₁) ≥ φ(G)` **or**
//! `b(v₂) ≥ φ(G)`". Read literally, a node `v` with `b(v) = φ−1`
//! adjacent to the antipodal level would send flows differing by 2
//! across its edges, which no rotor-router step can realise and which
//! contradicts the proof's own claim `|f_t(v,v₁) − f_t(v,v₂)| ≤ 1`.
//! The construction is implemented with the **and** reading (`L` only
//! when *both* endpoints are at level ≥ φ, i.e. on and beyond the
//! antipodal edge), under which all of the proof's invariants check out
//! — and the tests verify them exactly (2-periodicity, per-node flow
//! spread ≤ 1, discrepancy `4φ−1` on the odd cycle).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fixed_flow;
pub mod thm41;
pub mod thm42;
pub mod thm43;

pub use fixed_flow::FixedFlowBalancer;
