use dlb_core::{Balancer, FlowPlan, LoadVector};
use dlb_graph::BalancingGraph;

/// A balancer that sends the *same* flow assignment every step.
///
/// This is the demonstration device behind Theorem 4.1: a steady-state
/// flow `f` with `f(u,v) = f(v,u)` makes the load vector a fixed point
/// of the dynamics (`f₀(e) = f₁(e) = …`), and if `f` is also a
/// round-fair split of each node's load, the frozen state is a legal
/// trajectory of a round-fair balancer — one with terrible discrepancy.
///
/// The constructor does not check symmetry or feasibility; the
/// instance builders in [`thm41`](crate::thm41) do, and the engine
/// rejects overdraws at run time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FixedFlowBalancer {
    flows: FlowPlan,
}

impl FixedFlowBalancer {
    /// Wraps a fixed flow assignment.
    pub fn new(flows: FlowPlan) -> Self {
        FixedFlowBalancer { flows }
    }

    /// The fixed per-step flows.
    pub fn flows(&self) -> &FlowPlan {
        &self.flows
    }
}

impl Balancer for FixedFlowBalancer {
    fn name(&self) -> &'static str {
        "fixed-flow"
    }

    fn plan(&mut self, gp: &BalancingGraph, _loads: &LoadVector, plan: &mut FlowPlan) {
        debug_assert_eq!(plan.num_nodes(), self.flows.num_nodes());
        for u in 0..gp.num_nodes() {
            plan.node_mut(u).copy_from_slice(self.flows.node(u));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_core::Engine;
    use dlb_graph::generators;

    #[test]
    fn replays_the_same_plan_every_step() {
        let gp = BalancingGraph::bare(generators::cycle(4).unwrap());
        let mut flows = FlowPlan::for_graph(&gp);
        for u in 0..4 {
            flows.set(u, 0, 2);
            flows.set(u, 1, 2);
        }
        let mut bal = FixedFlowBalancer::new(flows);
        let mut engine = Engine::new(gp, LoadVector::uniform(4, 4));
        engine.run(&mut bal, 10).unwrap();
        // Symmetric constant flow: fixed point.
        assert_eq!(engine.loads(), &LoadVector::uniform(4, 4));
        assert_eq!(engine.ledger().get(0, 0), 20);
    }

    #[test]
    fn engine_rejects_infeasible_fixed_flow() {
        let gp = BalancingGraph::bare(generators::cycle(4).unwrap());
        let mut flows = FlowPlan::for_graph(&gp);
        flows.set(0, 0, 100);
        let mut bal = FixedFlowBalancer::new(flows);
        let mut engine = Engine::new(gp, LoadVector::uniform(4, 4));
        assert!(engine.step(&mut bal).is_err());
    }
}
