//! Theorem 4.1: a round-fair balancer stuck at discrepancy
//! `Ω(d·diam(G))`.
//!
//! The construction (Appendix C.1): pick a BFS root `u`; label every
//! node with `b(v) = dist(v, u)`; put flow
//! `f(v₁, v₂) = min(b(v₁), b(v₂))` on every directed edge. Then
//!
//! * `f(v₁,v₂) = f(v₂,v₁)` — each node receives exactly what it sends,
//!   so the load vector `x(v) = Σ_w f(v, w)` is a **fixed point**;
//! * within a node, flows take values in `{b(v)−1, b(v)}`, so the
//!   assignment is a **round-fair** split of `x(v)` — a legal
//!   trajectory for the class of \[17\];
//! * `x(u) = 0` while the BFS-farthest node `w` has
//!   `x(w) ≥ d·(b(w)−1)`, giving discrepancy `≥ d·(diam(G)−1)`.
//!
//! Since cumulatively fair balancers reach `O(d·√n)` on the same graphs
//! (Theorem 2.3 (ii)), this separates the classes: cumulative fairness
//! cannot be dropped.

use dlb_core::{FlowPlan, LoadVector};
use dlb_graph::traversal::{bfs_distances, eccentricity};
use dlb_graph::{BalancingGraph, GraphError, NodeId, RegularGraph};

use crate::FixedFlowBalancer;

/// A ready-to-run Theorem 4.1 instance.
#[derive(Debug, Clone)]
pub struct Theorem41Instance {
    /// The balancing graph (`G⁺ = G`, no self-loops — the construction
    /// does not need them).
    pub graph: BalancingGraph,
    /// The steady-state initial loads `x(v) = Σ_w min(b(v), b(w))`.
    pub initial: LoadVector,
    /// The frozen round-fair balancer realising the steady flow.
    pub balancer: FixedFlowBalancer,
    /// The BFS root `u` (the load-0 node).
    pub root: NodeId,
    /// The eccentricity of `u` (= the b-value of the farthest node).
    pub radius: u32,
}

impl Theorem41Instance {
    /// The discrepancy this steady state exhibits forever.
    pub fn discrepancy(&self) -> i64 {
        self.initial.discrepancy()
    }

    /// The lower bound `d·(radius − 1)` the theorem guarantees.
    pub fn guaranteed_discrepancy(&self) -> i64 {
        let d = self.graph.degree() as i64;
        d * (self.radius as i64 - 1).max(0)
    }
}

/// Builds the Theorem 4.1 steady state on `graph`, rooted at `root`.
///
/// # Errors
///
/// Returns an error if `root` is out of range or the graph is
/// disconnected (the distance labelling would be undefined).
pub fn instance(graph: RegularGraph, root: NodeId) -> Result<Theorem41Instance, GraphError> {
    let n = graph.num_nodes();
    if root >= n {
        return Err(GraphError::NodeOutOfRange { node: root, n });
    }
    let radius = eccentricity(&graph, root).ok_or_else(|| GraphError::InvalidParameters {
        reason: "theorem 4.1 requires a connected graph".into(),
    })?;
    let b = bfs_distances(&graph, root);

    let gp = BalancingGraph::bare(graph);
    let mut flows = FlowPlan::for_graph(&gp);
    let mut loads = vec![0i64; n];
    for v in 0..n {
        for (p, &w) in gp.graph().neighbors(v).iter().enumerate() {
            let f = u64::from(b[v].min(b[w as usize]));
            flows.set(v, p, f);
            loads[v] += f as i64;
        }
    }
    Ok(Theorem41Instance {
        graph: gp,
        initial: LoadVector::new(loads),
        balancer: FixedFlowBalancer::new(flows),
        root,
        radius,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_core::Engine;
    use dlb_graph::generators;

    fn cycle_instance(n: usize) -> Theorem41Instance {
        instance(generators::cycle(n).unwrap(), 0).unwrap()
    }

    #[test]
    fn loads_are_a_fixed_point() {
        let mut inst = cycle_instance(12);
        let initial = inst.initial.clone();
        let mut engine = Engine::new(inst.graph.clone(), inst.initial.clone());
        engine.run(&mut inst.balancer, 50).unwrap();
        assert_eq!(engine.loads(), &initial, "steady state must not move");
    }

    #[test]
    fn flows_are_round_fair() {
        let mut inst = cycle_instance(14);
        let mut engine = Engine::new(inst.graph.clone(), inst.initial.clone());
        engine.attach_monitor();
        engine.run(&mut inst.balancer, 20).unwrap();
        let m = engine.monitor().unwrap();
        assert_eq!(m.round_violations(), 0, "construction must be round-fair");
        assert_eq!(m.floor_violations(), 0);
        assert_eq!(m.overdraw_events(), 0);
    }

    #[test]
    fn construction_is_cumulatively_unfair() {
        // The point of the theorem: the frozen flow favours the
        // heavier edge forever, so the ledger spread grows linearly.
        let mut inst = cycle_instance(14);
        let mut engine = Engine::new(inst.graph.clone(), inst.initial.clone());
        engine.run(&mut inst.balancer, 100).unwrap();
        assert!(
            engine.ledger().original_edge_spread() >= 90,
            "spread {} should grow ~t",
            engine.ledger().original_edge_spread()
        );
    }

    #[test]
    fn discrepancy_meets_guarantee_on_cycles() {
        for n in [8usize, 16, 32, 64] {
            let inst = cycle_instance(n);
            assert_eq!(inst.radius, (n / 2) as u32);
            assert!(
                inst.discrepancy() >= inst.guaranteed_discrepancy(),
                "n = {n}: discrepancy {} < guarantee {}",
                inst.discrepancy(),
                inst.guaranteed_discrepancy()
            );
            // Root holds nothing; someone holds ~d·diam.
            assert_eq!(inst.initial.get(0), 0);
        }
    }

    #[test]
    fn works_on_higher_degree_graphs() {
        let g = generators::circulant(24, &[1, 2]).unwrap();
        let mut inst = instance(g, 3).unwrap();
        let initial = inst.initial.clone();
        assert!(inst.discrepancy() >= inst.guaranteed_discrepancy());
        let mut engine = Engine::new(inst.graph.clone(), inst.initial.clone());
        engine.attach_monitor();
        engine.run(&mut inst.balancer, 30).unwrap();
        assert_eq!(engine.loads(), &initial);
        assert_eq!(engine.monitor().unwrap().round_violations(), 0);
    }

    #[test]
    fn rejects_bad_root() {
        assert!(instance(generators::cycle(6).unwrap(), 6).is_err());
    }

    #[test]
    fn hypercube_instance_is_valid() {
        let mut inst = instance(generators::hypercube(4).unwrap(), 0).unwrap();
        assert_eq!(inst.radius, 4);
        let initial = inst.initial.clone();
        let mut engine = Engine::new(inst.graph.clone(), inst.initial.clone());
        engine.run(&mut inst.balancer, 10).unwrap();
        assert_eq!(engine.loads(), &initial);
    }
}
