//! Theorem 4.3: the rotor-router without self-loops is stuck at
//! discrepancy `Ω(d·φ(G))` on non-bipartite graphs.
//!
//! The construction (Appendix C.3) builds a **2-periodic orbit** of the
//! rotor-router on `G⁺ = G` (no self-loops): pick an apex `u` on a
//! shortest odd cycle; label nodes with `b(v) = dist(v, u)`; place on
//! every directed edge the flow
//!
//! ```text
//! f₀(v₁,v₂) = L                      if b(v₁) ≥ φ and b(v₂) ≥ φ,
//!             L + (φ − min(b₁,b₂))   if b(v₁) even (and b(v₂) odd),
//!             L − (φ − min(b₁,b₂))   if b(v₁) odd (and b(v₂) even),
//! ```
//!
//! and set `x₀(v) = Σ_w f₀(v, w)`, `f₁(v₁,v₂) = f₀(v₂,v₁)` (states
//! alternate). Within each node the flows take exactly two adjacent
//! values, so a rotor order putting the `+1` ports first realises the
//! orbit; the apex then oscillates between loads `(L+φ)·d` and
//! `(L−φ)·d` while the average stays `L·d` — discrepancy `Ω(d·φ(G))`
//! forever. (See the crate docs for why the first rule reads **and**
//! rather than the paper's "or".)
//!
//! Adding `d° ≥ d` self-loops to the *same* graph breaks the orbit and
//! the rotor-router balances — this is experiment E7's contrast run,
//! and the reason the paper's positive results all assume self-loops.

use dlb_core::schemes::RotorRouter;
use dlb_core::LoadVector;
use dlb_graph::properties::odd_girth_radius;
use dlb_graph::traversal::bfs_distances;
use dlb_graph::{BalancingGraph, GraphError, NodeId, PortOrder, RegularGraph};

/// A ready-to-run Theorem 4.3 instance.
#[derive(Debug, Clone)]
pub struct Theorem43Instance {
    /// The bare balancing graph (`G⁺ = G`, no self-loops).
    pub graph: BalancingGraph,
    /// The 2-periodic initial loads `x₀`.
    pub initial: LoadVector,
    /// The rotor-router with the adversarial port order and rotor
    /// positions realising the orbit.
    pub balancer: RotorRouter,
    /// The apex node `u`.
    pub apex: NodeId,
    /// The odd-girth radius `φ(G)`.
    pub phi: u32,
    /// The base flow level `L`.
    pub level: i64,
}

impl Theorem43Instance {
    /// The discrepancy of the orbit's initial state.
    pub fn discrepancy(&self) -> i64 {
        self.initial.discrepancy()
    }

    /// The `Ω(d·φ)` figure of merit: `d·φ(G)`.
    pub fn guaranteed_discrepancy(&self) -> i64 {
        self.graph.degree() as i64 * self.phi as i64
    }
}

/// Builds the Theorem 4.3 orbit on `graph`, anchored at `apex`, with
/// base flow level `L = level`.
///
/// The apex must lie on a shortest odd cycle for the distance labelling
/// to have the property the construction needs (adjacent nodes share a
/// `b`-value only at level ≥ φ). [`instance_on_cycle`] picks the apex
/// for you on odd cycles; for other graphs, try candidate apexes — the
/// builder verifies the property and reports failure cleanly.
///
/// # Errors
///
/// Returns an error if the graph is bipartite, `level < φ` (flows
/// would go negative), the apex is out of range, or the labelling
/// property fails at this apex.
pub fn instance(
    graph: RegularGraph,
    apex: NodeId,
    level: i64,
) -> Result<Theorem43Instance, GraphError> {
    let n = graph.num_nodes();
    if apex >= n {
        return Err(GraphError::NodeOutOfRange { node: apex, n });
    }
    let phi = odd_girth_radius(&graph).ok_or_else(|| GraphError::InvalidParameters {
        reason: "theorem 4.3 requires a non-bipartite graph".into(),
    })?;
    if level < phi as i64 {
        return Err(GraphError::InvalidParameters {
            reason: format!("level L = {level} must be at least φ = {phi}"),
        });
    }
    let b = bfs_distances(&graph, apex);
    // Verify the structural property: adjacent equal levels only at ≥ φ.
    for (v, _, w) in graph.directed_edges() {
        if b[v] == b[w] && b[v] < phi {
            return Err(GraphError::InvalidParameters {
                reason: format!(
                    "apex {apex} sees adjacent nodes {v}, {w} at equal level {} < φ = {phi}; \
                     pick an apex on a shortest odd cycle",
                    b[v]
                ),
            });
        }
    }

    let flow = |v: NodeId, w: NodeId| -> i64 {
        let (bv, bw) = (b[v], b[w]);
        if bv >= phi && bw >= phi {
            level
        } else if bv % 2 == 0 {
            level + (phi - bv.min(bw)) as i64
        } else {
            level - (phi - bv.min(bw)) as i64
        }
    };

    let d = graph.degree();
    let mut loads = vec![0i64; n];
    let mut orders: Vec<Vec<u16>> = Vec::with_capacity(n);
    #[allow(clippy::needless_range_loop)] // v indexes loads, orders and the flow closure
    for v in 0..n {
        let flows: Vec<i64> = graph
            .neighbors(v)
            .iter()
            .map(|&w| flow(v, w as usize))
            .collect();
        let max = *flows.iter().max().expect("d >= 1");
        let min = *flows.iter().min().expect("d >= 1");
        if max - min > 1 {
            return Err(GraphError::InvalidParameters {
                reason: format!(
                    "node {v} would need flows spreading {min}..{max}; \
                     the rotor-router cannot realise a spread above 1"
                ),
            });
        }
        loads[v] = flows.iter().sum();
        // Adversarial port order: ports carrying the larger flow first
        // (the proof's P1 ∪ P2 partition), so a rotor at position 0
        // hands the surplus to exactly the P1 ports.
        let mut order: Vec<u16> = (0..d as u16).collect();
        order.sort_by_key(|&p| (flows[p as usize] != max, p));
        orders.push(order);
    }

    let gp = BalancingGraph::bare(graph);
    let balancer = RotorRouter::with_initial_rotors(&gp, PortOrder::PerNode(orders), vec![0; n])?;
    Ok(Theorem43Instance {
        graph: gp,
        initial: LoadVector::new(loads),
        balancer,
        apex,
        phi,
        level,
    })
}

/// Builds the orbit on the odd cycle `C_n` with the canonical apex 0
/// and the smallest valid level `L = φ = (n−1)/2`.
///
/// # Errors
///
/// Returns an error if `n` is even or `n < 3`.
pub fn instance_on_cycle(n: usize) -> Result<Theorem43Instance, GraphError> {
    if n.is_multiple_of(2) {
        return Err(GraphError::InvalidParameters {
            reason: format!("theorem 4.3 cycle instance needs odd n, got {n}"),
        });
    }
    let graph = dlb_graph::generators::cycle(n)?;
    let phi = ((n - 1) / 2) as i64;
    instance(graph, 0, phi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_core::Engine;
    use dlb_graph::generators;

    #[test]
    fn cycle_orbit_is_two_periodic() {
        for n in [5usize, 9, 15, 33] {
            let mut inst = instance_on_cycle(n).unwrap();
            let x0 = inst.initial.clone();
            let mut engine = Engine::new(inst.graph.clone(), inst.initial.clone());
            engine.step(&mut inst.balancer).unwrap();
            let x1 = engine.loads().clone();
            assert_ne!(x1, x0, "n = {n}: states must alternate");
            engine.step(&mut inst.balancer).unwrap();
            assert_eq!(engine.loads(), &x0, "n = {n}: period-2 orbit");
            engine.step(&mut inst.balancer).unwrap();
            assert_eq!(engine.loads(), &x1, "n = {n}: period-2 orbit (odd)");
        }
    }

    #[test]
    fn orbit_survives_long_runs() {
        let mut inst = instance_on_cycle(17).unwrap();
        let x0 = inst.initial.clone();
        let disc = inst.discrepancy();
        let mut engine = Engine::new(inst.graph.clone(), inst.initial.clone());
        engine.run(&mut inst.balancer, 1000).unwrap();
        assert_eq!(engine.loads(), &x0);
        assert_eq!(engine.loads().discrepancy(), disc);
    }

    #[test]
    fn cycle_discrepancy_is_four_phi_minus_one() {
        for n in [9usize, 17, 33] {
            let inst = instance_on_cycle(n).unwrap();
            let phi = ((n - 1) / 2) as i64;
            // Apex at 2(L+φ) = 4φ, minimum at 2L − (2φ − 1) = 1.
            assert_eq!(inst.discrepancy(), 4 * phi - 1, "n = {n}");
            assert!(inst.discrepancy() >= inst.guaranteed_discrepancy());
        }
    }

    #[test]
    fn apex_oscillates_between_extremes() {
        let mut inst = instance_on_cycle(9).unwrap();
        let phi = 4i64;
        let level = inst.level;
        assert_eq!(inst.initial.get(0), 2 * (level + phi));
        let mut engine = Engine::new(inst.graph.clone(), inst.initial.clone());
        engine.step(&mut inst.balancer).unwrap();
        assert_eq!(engine.loads().get(0), 2 * (level - phi));
    }

    #[test]
    fn flows_stay_nonnegative_and_conserve() {
        let mut inst = instance_on_cycle(21).unwrap();
        let total = inst.initial.total();
        let mut engine = Engine::new(inst.graph.clone(), inst.initial.clone());
        engine.run(&mut inst.balancer, 100).unwrap();
        assert_eq!(engine.loads().total(), total);
        assert_eq!(engine.negative_node_steps(), 0);
    }

    #[test]
    fn works_on_petersen_graph() {
        // Petersen: odd girth 5, φ = 2, every vertex lies on a 5-cycle.
        let mut inst = instance(generators::petersen(), 0, 5).unwrap();
        assert_eq!(inst.phi, 2);
        let x0 = inst.initial.clone();
        let mut engine = Engine::new(inst.graph.clone(), inst.initial.clone());
        engine.step(&mut inst.balancer).unwrap();
        let x1 = engine.loads().clone();
        engine.step(&mut inst.balancer).unwrap();
        assert_eq!(engine.loads(), &x0, "petersen orbit must be 2-periodic");
        assert_ne!(x1, x0);
        assert!(inst.discrepancy() >= inst.guaranteed_discrepancy());
    }

    #[test]
    fn rejects_bipartite_graphs() {
        assert!(instance(generators::cycle(8).unwrap(), 0, 10).is_err());
        assert!(instance_on_cycle(8).is_err());
    }

    #[test]
    fn rejects_too_small_level() {
        let g = generators::cycle(9).unwrap();
        assert!(instance(g, 0, 3).is_err()); // φ = 4 > 3
    }

    #[test]
    fn adding_self_loops_breaks_the_orbit() {
        // The contrast run of experiment E7: same graph, same loads,
        // but d° = d self-loops — the rotor-router now balances.
        let inst = instance_on_cycle(17).unwrap();
        let lazy = BalancingGraph::lazy(inst.graph.graph().clone());
        let mut rotor = RotorRouter::new(&lazy, PortOrder::Sequential).unwrap();
        let mut engine = Engine::new(lazy, inst.initial.clone());
        engine.run(&mut rotor, 5000).unwrap();
        assert!(
            engine.loads().discrepancy() < inst.discrepancy() / 2,
            "with self-loops the orbit must dissolve: got {} vs stuck {}",
            engine.loads().discrepancy(),
            inst.discrepancy()
        );
    }

    #[test]
    fn orbit_flows_are_round_fair() {
        let mut inst = instance_on_cycle(15).unwrap();
        let mut engine = Engine::new(inst.graph.clone(), inst.initial.clone());
        engine.attach_monitor();
        engine.run(&mut inst.balancer, 30).unwrap();
        let m = engine.monitor().unwrap();
        assert_eq!(m.round_violations(), 0);
        assert_eq!(m.floor_violations(), 0);
    }
}
