//! End-to-end contracts of the serving layer: snapshot/resume
//! bit-identity at every round boundary, journal replay fidelity
//! (including erroring tenants), and schedule-independence of the
//! batch scheduler.

use dlb_core::{EngineError, LoadVector};
use dlb_graph::{generators, BalancingGraph};
use dlb_scenario::WorkloadSpec;
use dlb_serve::{SchemeKind, Server, Tenant, TenantSnapshot};
use dlb_topology::ScheduleSpec;

fn lazy_cycle(n: usize) -> BalancingGraph {
    BalancingGraph::lazy(generators::cycle(n).unwrap())
}

const SCHEMES: [SchemeKind; 4] = [
    SchemeKind::SendFloor,
    SchemeKind::SendRound,
    SchemeKind::RotorRouter,
    SchemeKind::RotorRouterStar,
];

fn churny_tenant(scheme: SchemeKind) -> Tenant {
    Tenant::new(
        lazy_cycle(16),
        LoadVector::point_mass(16, 320),
        scheme,
        Some(WorkloadSpec::Bursty {
            on: 3,
            off: 2,
            rate: 16,
            seed: 9,
        }),
        ScheduleSpec::Periodic {
            period: 3,
            swaps: 2,
            seed: 11,
        },
    )
    .unwrap()
}

/// The tentpole contract: a tenant snapshotted at ANY round boundary
/// and resumed in a fresh instance finishes bit-identically to the
/// uninterrupted run — for every scheme, under churn and injection
/// simultaneously.
#[test]
fn snapshot_resume_is_bit_identical_at_every_round_boundary() {
    const ROUNDS: usize = 20;
    for scheme in SCHEMES {
        let mut reference = churny_tenant(scheme);
        assert!(reference.run_rounds(ROUNDS));
        let expected = reference.outcome();
        assert!(
            expected.topology_events_applied > 0,
            "{:?}: churn must actually fire",
            scheme
        );
        assert_ne!(
            expected.injected_total, 0,
            "{scheme:?}: injection must fire"
        );

        for split in 0..=ROUNDS {
            let mut live = churny_tenant(scheme);
            if split > 0 {
                assert!(live.run_rounds(split));
            }
            let snap = live.snapshot();
            let mut resumed = Tenant::resume_from_snapshot(&snap).unwrap();
            assert_eq!(resumed.rounds_done(), split);
            if split < ROUNDS {
                assert!(resumed.run_rounds(ROUNDS - split));
            }
            assert_eq!(
                resumed.outcome(),
                expected,
                "{scheme:?} diverged after resume at round {split}"
            );
        }
    }
}

/// Journal replay reproduces the live tenant across multiple scheduler
/// slices (the journal spans several `run_rounds` batches).
#[test]
fn journal_replay_matches_live_state_across_slices() {
    for scheme in SCHEMES {
        let mut tenant = churny_tenant(scheme);
        for _ in 0..3 {
            assert!(tenant.run_rounds(5));
        }
        assert!(
            tenant.replay_matches().unwrap(),
            "{scheme:?}: replay diverged from live state"
        );
        let contents = tenant.journal().decode().unwrap();
        assert_eq!(contents.through_round, 15);
        assert!(!contents.rounds.is_empty());
    }
}

/// A journal opened at a snapshot boundary (resumed tenant) replays
/// from that snapshot, not from round zero.
#[test]
fn resumed_tenants_journal_from_their_snapshot() {
    let mut tenant = churny_tenant(SchemeKind::RotorRouter);
    assert!(tenant.run_rounds(8));
    let mut resumed = Tenant::resume_from_snapshot(&tenant.snapshot()).unwrap();
    assert!(resumed.run_rounds(6));
    let contents = resumed.journal().decode().unwrap();
    assert_eq!(contents.base.engine.step, 8);
    assert_eq!(contents.through_round, 14);
    assert!(resumed.replay_matches().unwrap());
}

/// An erroring tenant stops, stays stopped, and its journal replays
/// the error bit-identically (same variant, same step, same rolled-
/// back state).
#[test]
fn errored_tenants_stop_and_replay_reproduces_the_error() {
    let mut tenant = Tenant::new(
        lazy_cycle(8),
        LoadVector::uniform(8, 2),
        SchemeKind::SendFloor,
        Some(WorkloadSpec::DrainUnclamped { rate: 50 }),
        ScheduleSpec::Static,
    )
    .unwrap();
    assert!(!tenant.run_rounds(50), "the drain must push loads negative");
    let error = tenant.error().cloned().expect("tenant must have stopped");
    assert!(
        matches!(error, EngineError::NegativeLoad { .. }),
        "{error:?}"
    );

    // Stopped tenants are no-ops.
    let rounds = tenant.rounds_done();
    assert!(!tenant.run_rounds(10));
    assert_eq!(tenant.rounds_done(), rounds);

    // Replay reproduces the identical error and final state.
    assert!(tenant.replay_matches().unwrap());
    let replayed = Tenant::replay(tenant.journal()).unwrap();
    assert_eq!(replayed.error, Some(error));

    // A snapshot of the stopped tenant carries the error through
    // resume.
    let resumed = Tenant::resume_from_snapshot(&tenant.snapshot()).unwrap();
    assert_eq!(resumed.error(), tenant.error());
}

fn mixed_fleet() -> Vec<Tenant> {
    let workloads = [
        None,
        Some(WorkloadSpec::Steady { rate: 6, seed: 3 }),
        Some(WorkloadSpec::Hotspot { rate: 4 }),
        Some(WorkloadSpec::Adversary { budget: 5 }),
    ];
    let schedules = [
        ScheduleSpec::Static,
        ScheduleSpec::Periodic {
            period: 4,
            swaps: 1,
            seed: 5,
        },
        ScheduleSpec::Burst {
            fail_at: 3,
            wake_at: 9,
            count: 2,
            seed: 7,
        },
    ];
    let mut tenants = Vec::new();
    for (i, scheme) in SCHEMES.iter().cycle().take(12).enumerate() {
        tenants.push(
            Tenant::new(
                lazy_cycle(8 + 4 * (i % 3)),
                LoadVector::point_mass(8 + 4 * (i % 3), 200 + 10 * i as i64),
                *scheme,
                workloads[i % workloads.len()].clone(),
                schedules[i % schedules.len()].clone(),
            )
            .unwrap(),
        )
    }
    tenants
}

/// The scheduler contract: per-tenant outcomes are independent of the
/// worker count and interleaving — a 4-worker server produces exactly
/// the per-tenant states of a serial sweep, and every journal still
/// replays.
#[test]
fn scheduler_outcomes_are_worker_count_independent() {
    let serial = Server::new(mixed_fleet());
    let parallel = Server::new(mixed_fleet());
    for _ in 0..2 {
        let a = serial.run_slice(1, 6);
        let b = parallel.run_slice(4, 6);
        assert_eq!(a.served + a.errored, serial.len());
        assert_eq!(b.served + b.errored, parallel.len());
        assert_eq!(a.served, b.served);
        assert_eq!(a.rounds_advanced, b.rounds_advanced);
        // Every tenant that actually ran got a latency sample.
        assert!(b.latencies_ns.len() >= b.served);
        assert!(b.latencies_ns.len() <= parallel.len());
    }
    let serial = serial.into_tenants();
    let parallel = parallel.into_tenants();
    for (i, (a, b)) in serial.iter().zip(&parallel).enumerate() {
        assert_eq!(a.outcome(), b.outcome(), "tenant {i} diverged");
        assert!(a.replay_matches().unwrap(), "tenant {i} journal diverged");
        assert!(b.replay_matches().unwrap(), "tenant {i} journal diverged");
    }
}

/// Corrupt snapshots surface as errors, never as panics, and
/// semantically inconsistent cursors are rejected.
#[test]
fn resume_rejects_corrupt_snapshots() {
    let mut tenant = churny_tenant(SchemeKind::SendFloor);
    assert!(tenant.run_rounds(5));
    let bytes = tenant.snapshot();
    for cut in 0..bytes.len() {
        assert!(
            Tenant::resume_from_snapshot(&bytes[..cut]).is_err(),
            "cut {cut}"
        );
    }
    // A wrong-shape workload cursor decodes fine but must be rejected
    // by the generator's restore protocol.
    let mut snap = TenantSnapshot::decode(&bytes).unwrap();
    snap.workload_cursor = vec![1, 2, 3];
    assert!(Tenant::resume_from_snapshot(&snap.encode()).is_err());
    // A rotor vector of the wrong length is rejected by the scheme.
    let mut snap = TenantSnapshot::decode(&bytes).unwrap();
    snap.scheme = SchemeKind::RotorRouter;
    snap.rotors = vec![0; 3];
    assert!(Tenant::resume_from_snapshot(&snap.encode()).is_err());
}
