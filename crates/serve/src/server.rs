//! The batch scheduler: one process, many tenants, a worker pool.
//!
//! Tenants are independent — each owns its engine, scheme and
//! generators — so the scheduler's only concurrency problem is work
//! distribution. A slice runs every ready tenant `rounds` rounds:
//! workers pull tenant indices from a shared atomic ticket counter and
//! lock the tenant's mutex for the duration of its batch. There is no
//! inter-tenant ordering, and the final state of every tenant is
//! **schedule-independent**: any worker interleaving produces the same
//! per-tenant outcome as a serial sweep, which is exactly what the
//! `dlb-model` scheduler scenarios explore exhaustively under loom.
//!
//! All synchronisation goes through [`dlb_core::sync`] (the PR 7
//! gate), so the same code is model-checkable under
//! `--cfg dlb_model`.
//!
//! # Observability
//!
//! The scheduler is instrumented three ways, all additive — the plain
//! [`Server::run_slice`] path is byte-for-byte the PR 9 code path:
//!
//! * [`Server::trace_slice`] runs a serial slice against any
//!   [`Sink`], emitting one `slice` span plus per-ticket
//!   `ticket`/`lock`/`step`/`merge` spans (a [`NoopSink`] folds every
//!   probe away, which is how `run_slice(1, ..)` and
//!   `trace_slice(.., &mut NoopSink)` stay identical);
//! * [`Server::run_slice_profiled`] runs a full (possibly threaded)
//!   slice and aggregates per-phase wall-clock ns into a
//!   [`SliceProfile`];
//! * every profiled slice also feeds the server's
//!   [`MetricRegistry`] (named counters plus the
//!   `serve_slice_latency_ns` histogram), rendered on demand by
//!   [`Server::render_prometheus`].

use std::time::Instant;

use dlb_core::sync::atomic::{AtomicUsize, Ordering};
use dlb_core::sync::{thread, Mutex};
use dlb_obs::{MetricRegistry, NoopSink, Phase, Sink};

use crate::tenant::Tenant;

/// A multi-tenant server: the tenant table plus slice scheduling.
pub struct Server {
    tenants: Vec<Mutex<Tenant>>,
    /// Cumulative serving metrics, fed by the profiled entry points.
    metrics: Mutex<MetricRegistry>,
}

/// What one scheduler slice did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SliceReport {
    /// Tenants that ran a full batch cleanly this slice.
    pub served: usize,
    /// Tenants skipped or stopped because of a terminal error.
    pub errored: usize,
    /// Engine rounds advanced across all tenants this slice.
    pub rounds_advanced: u64,
    /// Per-tenant service latency (lock + batch) in nanoseconds, one
    /// entry per tenant visited, in no particular order.
    pub latencies_ns: Vec<u64>,
}

/// Wall-clock decomposition of one scheduler slice, summed over every
/// ticket a worker claimed: how long the slice spent acquiring
/// tickets, waiting on tenant locks, stepping tenant engines, and
/// merging bookkeeping. Produced by [`Server::run_slice_profiled`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SliceProfile {
    /// Ns spent claiming tickets from the shared counter.
    pub ticket_ns: u64,
    /// Ns spent acquiring tenant mutexes.
    pub lock_ns: u64,
    /// Ns spent inside `Tenant::run_rounds` batches.
    pub step_ns: u64,
    /// Ns spent folding results back into the slice report.
    pub merge_ns: u64,
    /// Tickets that resolved to a tenant (visited, served or errored).
    pub tickets: u64,
}

impl SliceProfile {
    /// Folds another worker's profile into this one.
    pub fn merge(&mut self, other: &SliceProfile) {
        self.ticket_ns += other.ticket_ns;
        self.lock_ns += other.lock_ns;
        self.step_ns += other.step_ns;
        self.merge_ns += other.merge_ns;
        self.tickets += other.tickets;
    }
}

impl Server {
    /// Builds a server over the given tenant table.
    pub fn new(tenants: Vec<Tenant>) -> Server {
        Server {
            tenants: tenants.into_iter().map(Mutex::new).collect(),
            metrics: Mutex::new(MetricRegistry::new()),
        }
    }

    /// Number of hosted tenants.
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// Whether the server hosts no tenants.
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }

    /// Runs `f` with tenant `i` locked.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn with_tenant<R>(&self, i: usize, f: impl FnOnce(&mut Tenant) -> R) -> R {
        let mut guard = self.tenants[i].lock().expect("tenant mutex not poisoned");
        f(&mut guard)
    }

    /// Tears the server down, returning the tenants.
    pub fn into_tenants(self) -> Vec<Tenant> {
        self.tenants
            .into_iter()
            .map(|m| m.into_inner().expect("tenant mutex not poisoned"))
            .collect()
    }

    /// Runs one slice: every ready tenant advances `rounds` rounds,
    /// distributed over `threads` workers.
    ///
    /// `threads <= 1` runs inline on the calling thread (no spawns),
    /// which is the serial oracle the model scenarios compare against.
    pub fn run_slice(&self, threads: usize, rounds: usize) -> SliceReport {
        if threads <= 1 {
            return self.drain(&AtomicUsize::new(0), rounds);
        }
        self.run_slice_pooled(threads, rounds)
    }

    fn run_slice_pooled(&self, threads: usize, rounds: usize) -> SliceReport {
        // The ticket counter is the entire scheduling protocol: each
        // worker claims the next unvisited tenant until the table is
        // exhausted.
        let next = AtomicUsize::new(0);
        let mut merged = SliceReport::default();
        let workers: Vec<SliceReport> = thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| scope.spawn(|| self.drain(&next, rounds)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("scheduler worker must not panic"))
                .collect()
        });
        for report in workers {
            merged.served += report.served;
            merged.errored += report.errored;
            merged.rounds_advanced += report.rounds_advanced;
            merged.latencies_ns.extend(report.latencies_ns);
        }
        merged
    }

    /// Runs one **serial** slice against a tracing sink, emitting one
    /// `slice` span plus per-ticket `ticket`/`lock`/`step`/`merge`
    /// spans (the span's `step` field carries the tenant index; the
    /// `step` span's `value` carries the rounds advanced).
    ///
    /// With a [`NoopSink`] every probe compiles away and this is
    /// exactly `run_slice(1, rounds)`; a [`dlb_obs::RingSink`] records
    /// the per-ticket timeline without changing any tenant outcome.
    pub fn trace_slice<Si: Sink>(&self, rounds: usize, sink: &mut Si) -> SliceReport {
        let probe = sink.start();
        let report = self.drain_traced(&AtomicUsize::new(0), rounds, sink);
        sink.span(Phase::Slice, 0, probe);
        report
    }

    /// One worker's share of a slice: claim tickets until exhausted.
    fn drain(&self, next: &AtomicUsize, rounds: usize) -> SliceReport {
        self.drain_traced(next, rounds, &mut NoopSink)
    }

    /// The drain loop, monomorphized over the sink: the untraced
    /// [`Server::drain`] is this with a [`NoopSink`], so the two can
    /// never drift apart.
    fn drain_traced<Si: Sink>(
        &self,
        next: &AtomicUsize,
        rounds: usize,
        sink: &mut Si,
    ) -> SliceReport {
        let mut report = SliceReport::default();
        loop {
            let ticket_probe = sink.start();
            // Relaxed: the ticket only partitions indices between
            // workers; all tenant data is guarded by its own mutex.
            let i = next.fetch_add(1, Ordering::Relaxed);
            let Some(slot) = self.tenants.get(i) else {
                break;
            };
            sink.span(Phase::Ticket, i as u64, ticket_probe);
            let started = Instant::now();
            let lock_probe = sink.start();
            let mut tenant = slot.lock().expect("tenant mutex not poisoned");
            sink.span(Phase::Lock, i as u64, lock_probe);
            if tenant.error().is_some() {
                report.errored += 1;
                continue;
            }
            let step_probe = sink.start();
            let before = tenant.rounds_done();
            let clean = tenant.run_rounds(rounds);
            let advanced = (tenant.rounds_done() - before) as u64;
            if Si::ENABLED {
                let now = sink.now_ns();
                sink.record(dlb_obs::Event {
                    kind: dlb_obs::EventKind::Span,
                    phase: Phase::TenantStep,
                    step: i as u64,
                    at_ns: step_probe,
                    dur_ns: now.saturating_sub(step_probe),
                    value: advanced,
                });
            }
            let merge_probe = sink.start();
            report.rounds_advanced += advanced;
            if clean {
                report.served += 1;
            } else {
                report.errored += 1;
            }
            drop(tenant);
            report
                .latencies_ns
                .push(started.elapsed().as_nanos() as u64);
            sink.span(Phase::SliceMerge, i as u64, merge_probe);
        }
        report
    }

    /// Runs one slice like [`Server::run_slice`] while decomposing its
    /// wall-clock into ticket-acquire / lock / tenant-step / merge
    /// phases, and folds the result into the server's metric registry
    /// (`serve_*` counters plus the `serve_slice_latency_ns` and
    /// per-phase histograms).
    ///
    /// Profiling only reads a monotonic clock between the exact same
    /// operations `run_slice` performs, so every tenant outcome is
    /// bit-identical to the unprofiled path.
    pub fn run_slice_profiled(&self, threads: usize, rounds: usize) -> (SliceReport, SliceProfile) {
        let next = AtomicUsize::new(0);
        let (report, profile) = if threads <= 1 {
            self.drain_profiled(&next, rounds)
        } else {
            let mut merged = SliceReport::default();
            let mut profile = SliceProfile::default();
            let workers: Vec<(SliceReport, SliceProfile)> = thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|_| scope.spawn(|| self.drain_profiled(&next, rounds)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("scheduler worker must not panic"))
                    .collect()
            });
            for (report, p) in workers {
                merged.served += report.served;
                merged.errored += report.errored;
                merged.rounds_advanced += report.rounds_advanced;
                merged.latencies_ns.extend(report.latencies_ns);
                profile.merge(&p);
            }
            (merged, profile)
        };
        let mut reg = self.metrics.lock().expect("metric registry not poisoned");
        reg.counter_add("serve_slices_total", 1);
        reg.counter_add("serve_tickets_total", profile.tickets);
        reg.counter_add("serve_served_total", report.served as u64);
        reg.counter_add("serve_errored_total", report.errored as u64);
        reg.counter_add("serve_rounds_advanced_total", report.rounds_advanced);
        for &l in &report.latencies_ns {
            reg.observe("serve_slice_latency_ns", l);
        }
        reg.observe("serve_phase_ticket_ns", profile.ticket_ns);
        reg.observe("serve_phase_lock_ns", profile.lock_ns);
        reg.observe("serve_phase_step_ns", profile.step_ns);
        reg.observe("serve_phase_merge_ns", profile.merge_ns);
        drop(reg);
        (report, profile)
    }

    /// One worker's share of a profiled slice.
    fn drain_profiled(&self, next: &AtomicUsize, rounds: usize) -> (SliceReport, SliceProfile) {
        let mut report = SliceReport::default();
        let mut profile = SliceProfile::default();
        loop {
            let t_ticket = Instant::now();
            // Relaxed: same protocol as the unprofiled drain.
            let i = next.fetch_add(1, Ordering::Relaxed);
            let ticket_ns = t_ticket.elapsed().as_nanos() as u64;
            let Some(slot) = self.tenants.get(i) else {
                break;
            };
            profile.tickets += 1;
            profile.ticket_ns += ticket_ns;
            let started = Instant::now();
            let mut tenant = slot.lock().expect("tenant mutex not poisoned");
            profile.lock_ns += started.elapsed().as_nanos() as u64;
            if tenant.error().is_some() {
                report.errored += 1;
                continue;
            }
            let t_step = Instant::now();
            let before = tenant.rounds_done();
            let clean = tenant.run_rounds(rounds);
            profile.step_ns += t_step.elapsed().as_nanos() as u64;
            let t_merge = Instant::now();
            report.rounds_advanced += (tenant.rounds_done() - before) as u64;
            if clean {
                report.served += 1;
            } else {
                report.errored += 1;
            }
            drop(tenant);
            report
                .latencies_ns
                .push(started.elapsed().as_nanos() as u64);
            profile.merge_ns += t_merge.elapsed().as_nanos() as u64;
        }
        (report, profile)
    }

    /// Runs `f` against the server's cumulative metric registry.
    pub fn with_metrics<R>(&self, f: impl FnOnce(&MetricRegistry) -> R) -> R {
        let reg = self.metrics.lock().expect("metric registry not poisoned");
        f(&reg)
    }

    /// Renders the server's cumulative metrics in Prometheus text
    /// exposition format.
    pub fn render_prometheus(&self) -> String {
        self.with_metrics(|reg| reg.render_prometheus())
    }
}
