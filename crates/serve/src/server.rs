//! The batch scheduler: one process, many tenants, a worker pool.
//!
//! Tenants are independent — each owns its engine, scheme and
//! generators — so the scheduler's only concurrency problem is work
//! distribution. A slice runs every ready tenant `rounds` rounds:
//! workers pull tenant indices from a shared atomic ticket counter and
//! lock the tenant's mutex for the duration of its batch. There is no
//! inter-tenant ordering, and the final state of every tenant is
//! **schedule-independent**: any worker interleaving produces the same
//! per-tenant outcome as a serial sweep, which is exactly what the
//! `dlb-model` scheduler scenarios explore exhaustively under loom.
//!
//! All synchronisation goes through [`dlb_core::sync`] (the PR 7
//! gate), so the same code is model-checkable under
//! `--cfg dlb_model`.

use std::time::Instant;

use dlb_core::sync::atomic::{AtomicUsize, Ordering};
use dlb_core::sync::{thread, Mutex};

use crate::tenant::Tenant;

/// A multi-tenant server: the tenant table plus slice scheduling.
pub struct Server {
    tenants: Vec<Mutex<Tenant>>,
}

/// What one scheduler slice did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SliceReport {
    /// Tenants that ran a full batch cleanly this slice.
    pub served: usize,
    /// Tenants skipped or stopped because of a terminal error.
    pub errored: usize,
    /// Engine rounds advanced across all tenants this slice.
    pub rounds_advanced: u64,
    /// Per-tenant service latency (lock + batch) in nanoseconds, one
    /// entry per tenant visited, in no particular order.
    pub latencies_ns: Vec<u64>,
}

impl Server {
    /// Builds a server over the given tenant table.
    pub fn new(tenants: Vec<Tenant>) -> Server {
        Server {
            tenants: tenants.into_iter().map(Mutex::new).collect(),
        }
    }

    /// Number of hosted tenants.
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// Whether the server hosts no tenants.
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }

    /// Runs `f` with tenant `i` locked.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn with_tenant<R>(&self, i: usize, f: impl FnOnce(&mut Tenant) -> R) -> R {
        let mut guard = self.tenants[i].lock().expect("tenant mutex not poisoned");
        f(&mut guard)
    }

    /// Tears the server down, returning the tenants.
    pub fn into_tenants(self) -> Vec<Tenant> {
        self.tenants
            .into_iter()
            .map(|m| m.into_inner().expect("tenant mutex not poisoned"))
            .collect()
    }

    /// Runs one slice: every ready tenant advances `rounds` rounds,
    /// distributed over `threads` workers.
    ///
    /// `threads <= 1` runs inline on the calling thread (no spawns),
    /// which is the serial oracle the model scenarios compare against.
    pub fn run_slice(&self, threads: usize, rounds: usize) -> SliceReport {
        if threads <= 1 {
            return self.drain(&AtomicUsize::new(0), rounds);
        }
        // The ticket counter is the entire scheduling protocol: each
        // worker claims the next unvisited tenant until the table is
        // exhausted.
        let next = AtomicUsize::new(0);
        let mut merged = SliceReport::default();
        let workers: Vec<SliceReport> = thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| scope.spawn(|| self.drain(&next, rounds)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("scheduler worker must not panic"))
                .collect()
        });
        for report in workers {
            merged.served += report.served;
            merged.errored += report.errored;
            merged.rounds_advanced += report.rounds_advanced;
            merged.latencies_ns.extend(report.latencies_ns);
        }
        merged
    }

    /// One worker's share of a slice: claim tickets until exhausted.
    fn drain(&self, next: &AtomicUsize, rounds: usize) -> SliceReport {
        let mut report = SliceReport::default();
        loop {
            // Relaxed: the ticket only partitions indices between
            // workers; all tenant data is guarded by its own mutex.
            let i = next.fetch_add(1, Ordering::Relaxed);
            let Some(slot) = self.tenants.get(i) else {
                break;
            };
            let started = Instant::now();
            let mut tenant = slot.lock().expect("tenant mutex not poisoned");
            if tenant.error().is_some() {
                report.errored += 1;
                continue;
            }
            let before = tenant.rounds_done();
            let clean = tenant.run_rounds(rounds);
            report.rounds_advanced += (tenant.rounds_done() - before) as u64;
            if clean {
                report.served += 1;
            } else {
                report.errored += 1;
            }
            drop(tenant);
            report
                .latencies_ns
                .push(started.elapsed().as_nanos() as u64);
        }
        report
    }
}
