//! Multi-tenant engine serving: one process hosting many concurrent
//! balancing-engine tenants, each with its own graph, scheme, workload
//! and churn schedule.
//!
//! The paper's engine (and the whole differential battery around it)
//! runs one simulation per process; a service runs thousands. This
//! crate adds the serving layer on top of `dlb-core` without touching
//! the engine's semantics:
//!
//! * [`wire`] — the little-endian binary encoding both formats share;
//! * [`snapshot`] — the versioned tenant snapshot
//!   ([`TenantSnapshot`], magic `DLBSNAP1`): full engine state
//!   ([`dlb_core::EngineState`]), scheme rotor state, generator specs
//!   and cursors. [`Tenant::resume_from_snapshot`] is proven
//!   bit-identical to an uninterrupted run by the serve tests and the
//!   differential battery;
//! * [`journal`] — the append-only event-sourced journal
//!   ([`Journal`], magic `DLBJRNL1`): base snapshot plus raw per-round
//!   generator output (topology events pre-validation, net injection
//!   deltas, errors), replayable via [`Tenant::replay`];
//! * [`tenant`] — the hosted instance tying engine, scheme, generators
//!   and journal together;
//! * [`server`] — the batch scheduler multiplexing ready tenants over
//!   a worker pool through [`dlb_core::sync`] (so the scheduler is
//!   model-checkable under `--cfg dlb_model`, see `dlb-model`).
//!
//! The `serve` experiment in `dlb-harness` benchmarks this layer
//! (tenants/sec, aggregate rounds/sec, p99 per-tenant slice latency)
//! and writes `BENCH_PR9.json`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod journal;
pub mod server;
pub mod snapshot;
pub mod tenant;
pub mod wire;

pub use journal::{Journal, JournalContents, RoundRecord};
pub use server::{Server, SliceProfile, SliceReport};
pub use snapshot::{SchemeKind, TenantSnapshot};
pub use tenant::{Tenant, TenantError, TenantOutcome};
pub use wire::WireError;
