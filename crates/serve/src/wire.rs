//! The little-endian binary encoding shared by the snapshot and
//! journal formats.
//!
//! Both formats are sequences of fixed-width integers (no padding, no
//! alignment): `u8`/`u16`/`u32`/`u64` plus two's-complement `i64`.
//! [`Writer`] appends them to a growable buffer; [`Reader`] consumes
//! them back, reporting the byte offset of the first malformed field
//! instead of panicking — a truncated or corrupted snapshot must
//! surface as a [`WireError`], never as an index-out-of-bounds.

use std::error::Error;
use std::fmt;

/// A malformed or truncated byte stream, with the offset at which
/// decoding failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Byte offset of the first field that failed to decode.
    pub offset: usize,
    /// What was expected there.
    pub reason: String,
}

impl WireError {
    pub(crate) fn new(offset: usize, reason: impl Into<String>) -> WireError {
        WireError {
            offset,
            reason: reason.into(),
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "wire decode failed at byte {}: {}",
            self.offset, self.reason
        )
    }
}

impl Error for WireError {}

/// Append-only encoder.
#[derive(Debug, Default, Clone)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// A fresh, empty buffer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends raw bytes verbatim.
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian two's-complement `i64`.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a length-prefixed UTF-8 string (`u32` byte length).
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.raw(s.as_bytes());
    }
}

/// Cursor-based decoder over a byte slice.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader starting at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Current byte offset.
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the whole buffer has been consumed.
    pub fn is_done(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Consumes exactly `n` raw bytes.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] if fewer than `n` bytes remain.
    pub fn raw(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        match self.buf[self.pos..].split_at_checked(n) {
            Some((head, _)) => {
                self.pos += n;
                Ok(head)
            }
            None => Err(WireError::new(
                self.pos,
                format!("wanted {n} bytes, {} remain", self.remaining()),
            )),
        }
    }

    /// Consumes one byte.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on a truncated buffer.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.raw(1)?[0])
    }

    /// Consumes a little-endian `u16`.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on a truncated buffer.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        let at = self.pos;
        let b = self.raw(2)?;
        <[u8; 2]>::try_from(b)
            .map(u16::from_le_bytes)
            .map_err(|_| WireError::new(at, "u16"))
    }

    /// Consumes a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on a truncated buffer.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        let at = self.pos;
        let b = self.raw(4)?;
        <[u8; 4]>::try_from(b)
            .map(u32::from_le_bytes)
            .map_err(|_| WireError::new(at, "u32"))
    }

    /// Consumes a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on a truncated buffer.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        let at = self.pos;
        let b = self.raw(8)?;
        <[u8; 8]>::try_from(b)
            .map(u64::from_le_bytes)
            .map_err(|_| WireError::new(at, "u64"))
    }

    /// Consumes a little-endian two's-complement `i64`.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on a truncated buffer.
    pub fn i64(&mut self) -> Result<i64, WireError> {
        let at = self.pos;
        let b = self.raw(8)?;
        <[u8; 8]>::try_from(b)
            .map(i64::from_le_bytes)
            .map_err(|_| WireError::new(at, "i64"))
    }

    /// Consumes a `u64` and narrows it to `usize`.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on truncation or if the value does not
    /// fit a `usize`.
    pub fn len64(&mut self) -> Result<usize, WireError> {
        let at = self.pos;
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| WireError::new(at, format!("length {v} overflows usize")))
    }

    /// Consumes a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on truncation or invalid UTF-8.
    pub fn str(&mut self) -> Result<String, WireError> {
        let n = self.u32()? as usize;
        let at = self.pos;
        let bytes = self.raw(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::new(at, "invalid UTF-8"))
    }

    /// Consumes and verifies an 8-byte magic tag.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] if the bytes do not match `expected`.
    pub fn magic(&mut self, expected: &[u8; 8]) -> Result<(), WireError> {
        let at = self.pos;
        let got = self.raw(8)?;
        if got != expected {
            return Err(WireError::new(
                at,
                format!("bad magic {got:?}, expected {expected:?}"),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_every_width() {
        let mut w = Writer::new();
        w.magic_test();
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        r.magic(b"DLBTEST1").unwrap();
        assert_eq!(r.u8().unwrap(), 0xAB);
        assert_eq!(r.u16().unwrap(), 0xBEEF);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.i64().unwrap(), i64::MIN);
        assert_eq!(r.str().unwrap(), "hello");
        assert!(r.is_done());
    }

    impl Writer {
        fn magic_test(&mut self) {
            self.raw(b"DLBTEST1");
            self.u8(0xAB);
            self.u16(0xBEEF);
            self.u32(0xDEAD_BEEF);
            self.u64(u64::MAX - 1);
            self.i64(i64::MIN);
            self.str("hello");
        }
    }

    #[test]
    fn truncation_reports_the_offset() {
        let mut w = Writer::new();
        w.u32(7);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        r.u16().unwrap();
        let err = r.u32().unwrap_err();
        assert_eq!(err.offset, 2);
        assert!(err.reason.contains("2 remain"), "{}", err.reason);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut r = Reader::new(b"DLBWRONGrest");
        assert!(r.magic(b"DLBSNAP1").is_err());
    }
}
