//! The per-tenant event-sourced journal: an append-only byte log that
//! makes every tenant run deterministically replayable.
//!
//! A journal opens with a versioned header embedding the **base
//! snapshot** (the tenant's full state when journaling began) and then
//! accumulates records:
//!
//! * **round records** — the raw topology events a schedule emitted
//!   and the net workload deltas injected in one round, exactly as the
//!   generators produced them (pre-validation: an event the graph
//!   later rejects is recorded too, which is what lets replay
//!   reproduce an erroring round);
//! * **advance records** — "ran through round `r`", closing a batch of
//!   rounds so replay knows how far to drive even when trailing rounds
//!   were quiet (no events, no deltas);
//! * **error records** — the terminal [`EngineError`], after which a
//!   tenant accepts no further work.
//!
//! Replaying the journal from its base snapshot and comparing against
//! the live tenant is the serve layer's integrity check; see
//! [`Tenant::replay_matches`](crate::Tenant::replay_matches).
//!
//! Layout after the header (`"DLBJRNL1"`, `u16` version, `u64` base
//! snapshot length, snapshot bytes):
//!
//! ```text
//! record := 0x00 u64 round  u32 ne  event[ne]  u32 nd  (u32 node, i64 delta)[nd]
//!         | 0x01 u64 through_round
//!         | 0x02 error                      (see crate::snapshot error coding)
//! event  := 0x00 u32 a  u32 b  u32 c  u32 d          (double-edge swap)
//!         | 0x01 u32 node  u16 len  u16 perm[len]    (port permutation)
//!         | 0x02 u32 node                            (sleep)
//!         | 0x03 u32 node                            (wake)
//! ```

use dlb_core::EngineError;
use dlb_graph::TopologyEvent;

use crate::snapshot::{decode_error, encode_error, TenantSnapshot};
use crate::wire::{Reader, WireError, Writer};

/// Magic tag opening every journal.
pub const JOURNAL_MAGIC: &[u8; 8] = b"DLBJRNL1";
/// Format version written by this build.
pub const JOURNAL_VERSION: u16 = 1;

/// An append-only tenant journal (header + base snapshot + records).
#[derive(Debug, Clone)]
pub struct Journal {
    bytes: Vec<u8>,
}

/// One decoded round record: what the generators produced for `round`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundRecord {
    /// The 1-based round (engine step) the record belongs to.
    pub round: u64,
    /// Raw topology events, in emission order, pre-validation.
    pub events: Vec<TopologyEvent>,
    /// Net injected deltas, as sparse `(node, delta)` pairs sorted by
    /// node (the engine applies the *net* per-node delta, so sparse
    /// non-zeros capture the injection bit-exactly).
    pub deltas: Vec<(u32, i64)>,
}

/// Fully decoded journal contents.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalContents {
    /// The embedded base snapshot journaling started from.
    pub base: TenantSnapshot,
    /// Round records in ascending round order.
    pub rounds: Vec<RoundRecord>,
    /// The highest round the tenant has completed (or attempted, for
    /// an erroring round).
    pub through_round: u64,
    /// Terminal error, if one was recorded.
    pub error: Option<EngineError>,
}

impl Journal {
    /// Opens a journal whose base is the given encoded snapshot.
    pub fn new(base_snapshot: &[u8]) -> Journal {
        let mut w = Writer::new();
        w.raw(JOURNAL_MAGIC);
        w.u16(JOURNAL_VERSION);
        w.u64(base_snapshot.len() as u64);
        w.raw(base_snapshot);
        Journal {
            bytes: w.into_bytes(),
        }
    }

    /// The raw journal bytes (header, snapshot, records).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Adopts raw journal bytes, validating the header and that the
    /// whole stream decodes.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on a malformed header or any
    /// undecodable record.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Journal, WireError> {
        let journal = Journal { bytes };
        journal.decode()?;
        Ok(journal)
    }

    /// Appends one round record. Rounds with neither events nor deltas
    /// need no record — an advance record covers them.
    pub(crate) fn record_round(
        &mut self,
        round: u64,
        events: &[TopologyEvent],
        deltas: &[(u32, i64)],
    ) {
        let mut w = Writer::new();
        w.u8(0);
        w.u64(round);
        w.u32(events.len() as u32);
        for ev in events {
            encode_event(&mut w, ev);
        }
        w.u32(deltas.len() as u32);
        for &(node, delta) in deltas {
            w.u32(node);
            w.i64(delta);
        }
        self.bytes.extend_from_slice(&w.into_bytes());
    }

    /// Appends an advance record: the tenant has driven its engine
    /// through `through_round`.
    pub(crate) fn record_advance(&mut self, through_round: u64) {
        let mut w = Writer::new();
        w.u8(1);
        w.u64(through_round);
        self.bytes.extend_from_slice(&w.into_bytes());
    }

    /// Appends the terminal error record.
    pub(crate) fn record_error(&mut self, error: &EngineError) {
        let mut w = Writer::new();
        w.u8(2);
        encode_error(&mut w, Some(error));
        self.bytes.extend_from_slice(&w.into_bytes());
    }

    /// Decodes the whole journal.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on a malformed header, an undecodable
    /// record, or records out of round order.
    pub fn decode(&self) -> Result<JournalContents, WireError> {
        let mut r = Reader::new(&self.bytes);
        r.magic(JOURNAL_MAGIC)?;
        let at = r.offset();
        let version = r.u16()?;
        if version != JOURNAL_VERSION {
            return Err(WireError::new(
                at,
                format!("unsupported journal version {version}"),
            ));
        }
        let snap_len = r.len64()?;
        let at = r.offset();
        let snap_bytes = r.raw(snap_len)?;
        let base = TenantSnapshot::decode(snap_bytes).map_err(|e| {
            WireError::new(at + e.offset, format!("embedded snapshot: {}", e.reason))
        })?;
        let mut rounds: Vec<RoundRecord> = Vec::new();
        let mut through_round = base.engine.step as u64;
        let mut error = base.error.clone();
        while !r.is_done() {
            let at = r.offset();
            match r.u8()? {
                0 => {
                    let round = r.u64()?;
                    if rounds.last().is_some_and(|last| last.round >= round) {
                        return Err(WireError::new(at, format!("round {round} out of order")));
                    }
                    let ne = r.u32()? as usize;
                    let mut events = Vec::with_capacity(ne);
                    for _ in 0..ne {
                        events.push(decode_event(&mut r)?);
                    }
                    let nd = r.u32()? as usize;
                    let mut deltas = Vec::with_capacity(nd);
                    for _ in 0..nd {
                        deltas.push((r.u32()?, r.i64()?));
                    }
                    through_round = through_round.max(round);
                    rounds.push(RoundRecord {
                        round,
                        events,
                        deltas,
                    });
                }
                1 => {
                    through_round = through_round.max(r.u64()?);
                }
                2 => {
                    error = decode_error(&mut r)?;
                }
                other => {
                    return Err(WireError::new(at, format!("unknown record tag {other}")));
                }
            }
        }
        Ok(JournalContents {
            base,
            rounds,
            through_round,
            error,
        })
    }
}

fn encode_event(w: &mut Writer, ev: &TopologyEvent) {
    match ev {
        TopologyEvent::Swap { a, b, c, d } => {
            w.u8(0);
            w.u32(*a as u32);
            w.u32(*b as u32);
            w.u32(*c as u32);
            w.u32(*d as u32);
        }
        TopologyEvent::PermutePorts { node, perm } => {
            w.u8(1);
            w.u32(*node as u32);
            w.u16(perm.len() as u16);
            for &p in perm {
                w.u16(p);
            }
        }
        TopologyEvent::Sleep { node } => {
            w.u8(2);
            w.u32(*node as u32);
        }
        TopologyEvent::Wake { node } => {
            w.u8(3);
            w.u32(*node as u32);
        }
    }
}

fn decode_event(r: &mut Reader<'_>) -> Result<TopologyEvent, WireError> {
    let at = r.offset();
    Ok(match r.u8()? {
        0 => TopologyEvent::Swap {
            a: r.u32()? as usize,
            b: r.u32()? as usize,
            c: r.u32()? as usize,
            d: r.u32()? as usize,
        },
        1 => {
            let node = r.u32()? as usize;
            let len = r.u16()? as usize;
            let mut perm = Vec::with_capacity(len);
            for _ in 0..len {
                perm.push(r.u16()?);
            }
            TopologyEvent::PermutePorts { node, perm }
        }
        2 => TopologyEvent::Sleep {
            node: r.u32()? as usize,
        },
        3 => TopologyEvent::Wake {
            node: r.u32()? as usize,
        },
        other => return Err(WireError::new(at, format!("unknown event tag {other}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::SchemeKind;
    use dlb_core::{Engine, LoadVector};
    use dlb_graph::{generators, BalancingGraph};
    use dlb_topology::ScheduleSpec;

    fn base() -> TenantSnapshot {
        let gp = BalancingGraph::lazy(generators::cycle(8).unwrap());
        let engine = Engine::new(gp, LoadVector::point_mass(8, 80));
        TenantSnapshot {
            engine: engine.export_state(),
            scheme: SchemeKind::SendFloor,
            rotors: Vec::new(),
            error: None,
            workload: None,
            workload_cursor: Vec::new(),
            schedule: ScheduleSpec::Static,
            schedule_cursor: Vec::new(),
        }
    }

    #[test]
    fn journal_roundtrips_records_in_order() {
        let base = base();
        let mut j = Journal::new(&base.encode());
        j.record_round(
            2,
            &[
                TopologyEvent::Swap {
                    a: 0,
                    b: 1,
                    c: 4,
                    d: 5,
                },
                TopologyEvent::Sleep { node: 3 },
            ],
            &[(0, 7), (5, -2)],
        );
        j.record_round(
            4,
            &[TopologyEvent::PermutePorts {
                node: 1,
                perm: vec![1, 0],
            }],
            &[],
        );
        j.record_advance(6);
        j.record_error(&EngineError::NegativeLoad {
            node: 5,
            load: -2,
            step: 6,
        });

        let contents = j.decode().unwrap();
        assert_eq!(contents.base, base);
        assert_eq!(contents.rounds.len(), 2);
        assert_eq!(contents.rounds[0].round, 2);
        assert_eq!(contents.rounds[0].events.len(), 2);
        assert_eq!(contents.rounds[0].deltas, vec![(0, 7), (5, -2)]);
        assert_eq!(contents.rounds[1].round, 4);
        assert_eq!(contents.through_round, 6);
        assert_eq!(
            contents.error,
            Some(EngineError::NegativeLoad {
                node: 5,
                load: -2,
                step: 6
            })
        );

        // from_bytes re-validates the whole stream.
        let reparsed = Journal::from_bytes(j.as_bytes().to_vec()).unwrap();
        assert_eq!(reparsed.decode().unwrap(), contents);
    }

    #[test]
    fn out_of_order_and_corrupt_records_are_rejected() {
        let mut j = Journal::new(&base().encode());
        j.record_round(5, &[], &[(1, 1)]);
        j.record_round(3, &[], &[(2, 2)]);
        assert!(j.decode().is_err());

        let mut j = Journal::new(&base().encode());
        j.record_advance(4);
        let mut bytes = j.as_bytes().to_vec();
        bytes.push(9); // unknown record tag
        assert!(Journal::from_bytes(bytes).is_err());
    }
}
