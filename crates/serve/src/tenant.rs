//! One hosted engine instance: graph × scheme × workload × churn
//! schedule, journaled and snapshot-resumable.
//!
//! A [`Tenant`] owns its [`Engine`], its scheme state, its generator
//! boxes, and an append-only [`Journal`]. Every batch of rounds is run
//! through **recording wrappers** that capture the raw generator
//! output (topology events pre-validation, net injection deltas) so
//! the journal replays the exact same round inputs later — including
//! a round that errors, whose rejected events are recorded too.
//!
//! Replay drives a fresh engine rebuilt from the journal's base
//! snapshot through the recorded rounds and compares the
//! **path-independent outcome** ([`TenantOutcome`]): loads, graph,
//! rotor state, step/injection/event counters and terminal error. The
//! per-path diagnostics (`discrepancy_scans`, `VectorStats.runs`) are
//! deliberately outside the comparison — they count *how* a result was
//! computed, and a replay in one uninterrupted run legitimately
//! dispatches differently than a live tenant served across many
//! scheduler slices.

use std::error::Error;
use std::fmt;

use dlb_core::schemes::{RotorRouter, RotorRouterStar, SendFloor, SendRound};
use dlb_core::{
    Engine, EngineError, LoadVector, NoWorkload, StaticTopology, TopologyEvent, TopologySchedule,
    Workload,
};
use dlb_graph::{BalancingGraph, GraphError, PortOrder, RegularGraph};
use dlb_scenario::WorkloadSpec;
use dlb_topology::{ScheduleSpec, SwapShortfall};

use crate::journal::{Journal, RoundRecord};
use crate::snapshot::{SchemeKind, TenantSnapshot};
use crate::wire::WireError;

/// Errors raised by tenant construction, snapshot resume and replay.
#[derive(Debug, Clone, PartialEq)]
pub enum TenantError {
    /// A snapshot or journal failed to decode.
    Wire(WireError),
    /// A decoded graph or rotor vector failed structural validation.
    Graph(GraphError),
    /// Decoded state that is syntactically valid but semantically
    /// inconsistent (cursor shape mismatch, load/node count mismatch,
    /// out-of-range journal indices).
    Corrupt(String),
}

impl fmt::Display for TenantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TenantError::Wire(e) => write!(f, "{e}"),
            TenantError::Graph(e) => write!(f, "{e}"),
            TenantError::Corrupt(reason) => write!(f, "corrupt tenant state: {reason}"),
        }
    }
}

impl Error for TenantError {}

impl From<WireError> for TenantError {
    fn from(e: WireError) -> TenantError {
        TenantError::Wire(e)
    }
}

impl From<GraphError> for TenantError {
    fn from(e: GraphError) -> TenantError {
        TenantError::Graph(e)
    }
}

/// The path-independent result of a tenant's run so far: everything
/// the five bit-identical execution paths agree on.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantOutcome {
    /// Final loads.
    pub loads: Vec<i64>,
    /// Rounds completed.
    pub step: usize,
    /// Negative node-step count.
    pub negative_node_steps: u64,
    /// Net injected tokens.
    pub injected_total: i64,
    /// Topology events applied (surviving rollback).
    pub topology_events_applied: u64,
    /// Final balancing graph (adjacency, ports, sleep set).
    pub graph: BalancingGraph,
    /// Rotor positions (empty for stateless schemes).
    pub rotors: Vec<u64>,
    /// Terminal error, if the run stopped.
    pub error: Option<EngineError>,
}

/// The concrete scheme a tenant runs; kernel-capable variants take the
/// engine's `run_kernel_dyn` path, ROTOR-ROUTER* the scalar
/// `run_fast_dyn` path.
#[derive(Debug, Clone)]
enum SchemeInstance {
    Floor(SendFloor),
    Round(SendRound),
    Rotor(RotorRouter),
    Star(RotorRouterStar),
}

impl SchemeInstance {
    fn build(
        kind: SchemeKind,
        gp: &BalancingGraph,
        rotors: Option<&[u64]>,
    ) -> Result<SchemeInstance, TenantError> {
        let positions = |words: &[u64]| -> Result<Vec<usize>, TenantError> {
            words
                .iter()
                .map(|&w| {
                    usize::try_from(w)
                        .map_err(|_| TenantError::Corrupt(format!("rotor word {w} overflows")))
                })
                .collect()
        };
        Ok(match kind {
            SchemeKind::SendFloor => SchemeInstance::Floor(SendFloor::new()),
            SchemeKind::SendRound => SchemeInstance::Round(SendRound::new()),
            SchemeKind::RotorRouter => SchemeInstance::Rotor(match rotors {
                None => RotorRouter::new(gp, PortOrder::Sequential)?,
                Some(words) => {
                    RotorRouter::with_initial_rotors(gp, PortOrder::Sequential, positions(words)?)?
                }
            }),
            SchemeKind::RotorRouterStar => SchemeInstance::Star(match rotors {
                None => RotorRouterStar::new(gp, PortOrder::Sequential)?,
                Some(words) => RotorRouterStar::with_initial_rotors(
                    gp,
                    PortOrder::Sequential,
                    positions(words)?,
                )?,
            }),
        })
    }

    fn kind(&self) -> SchemeKind {
        match self {
            SchemeInstance::Floor(_) => SchemeKind::SendFloor,
            SchemeInstance::Round(_) => SchemeKind::SendRound,
            SchemeInstance::Rotor(_) => SchemeKind::RotorRouter,
            SchemeInstance::Star(_) => SchemeKind::RotorRouterStar,
        }
    }

    fn rotor_words(&self) -> Vec<u64> {
        match self {
            SchemeInstance::Floor(_) | SchemeInstance::Round(_) => Vec::new(),
            SchemeInstance::Rotor(r) => r.rotors().iter().map(|&p| p as u64).collect(),
            SchemeInstance::Star(r) => r.rotors().iter().map(|&p| p as u64).collect(),
        }
    }
}

/// One hosted engine instance. See the [module docs](self).
pub struct Tenant {
    engine: Engine,
    scheme: SchemeInstance,
    workload_spec: Option<WorkloadSpec>,
    workload: Option<Box<dyn Workload>>,
    schedule_spec: ScheduleSpec,
    schedule: Option<Box<dyn TopologySchedule>>,
    journal: Journal,
    error: Option<EngineError>,
}

impl fmt::Debug for Tenant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tenant")
            .field("scheme", &self.scheme.kind())
            .field("rounds_done", &self.engine.step_count())
            .field("workload", &self.workload_spec)
            .field("schedule", &self.schedule_spec)
            .field("error", &self.error)
            .finish_non_exhaustive()
    }
}

impl Tenant {
    /// Creates a tenant at round zero and opens its journal.
    ///
    /// The schedule/workload generators are built from their specs
    /// ([`ScheduleSpec::Static`] / `None` mean the genuinely closed
    /// regime and keep the vectorized kernel path eligible).
    ///
    /// # Errors
    ///
    /// Returns [`TenantError`] if `initial` does not have one entry
    /// per node, or if the scheme rejects the graph (ROTOR-ROUTER*
    /// requires `d° = d`).
    pub fn new(
        graph: BalancingGraph,
        initial: LoadVector,
        scheme: SchemeKind,
        workload: Option<WorkloadSpec>,
        schedule: ScheduleSpec,
    ) -> Result<Tenant, TenantError> {
        let n = graph.num_nodes();
        if initial.as_slice().len() != n {
            return Err(TenantError::Corrupt(format!(
                "initial loads have {} entries, graph has {n} nodes",
                initial.as_slice().len()
            )));
        }
        let scheme = SchemeInstance::build(scheme, &graph, None)?;
        let engine = Engine::new(graph, initial);
        let mut tenant = Tenant {
            engine,
            scheme,
            workload: workload.as_ref().map(|spec| spec.build(n)),
            workload_spec: workload,
            schedule: schedule.build(),
            schedule_spec: schedule,
            journal: Journal::new(&[]),
            error: None,
        };
        tenant.journal = Journal::new(&tenant.snapshot());
        Ok(tenant)
    }

    /// Rebuilds a tenant from an encoded snapshot, resuming
    /// bit-identically: engine counters, rotor positions and generator
    /// cursors all restored. A fresh journal is opened with this
    /// snapshot as its base.
    ///
    /// # Errors
    ///
    /// Returns [`TenantError`] on undecodable bytes, an invalid graph
    /// or rotor vector, or generator cursors the specs reject.
    pub fn resume_from_snapshot(bytes: &[u8]) -> Result<Tenant, TenantError> {
        let snap = TenantSnapshot::decode(bytes)?;
        Tenant::from_snapshot_contents(snap, Journal::new(bytes))
    }

    fn from_snapshot_contents(
        snap: TenantSnapshot,
        journal: Journal,
    ) -> Result<Tenant, TenantError> {
        let n = snap.engine.graph.num_nodes();
        if snap.engine.loads.len() != n {
            return Err(TenantError::Corrupt(format!(
                "snapshot has {} loads for {n} nodes",
                snap.engine.loads.len()
            )));
        }
        let rotors = (!snap.rotors.is_empty()).then_some(snap.rotors.as_slice());
        let scheme = SchemeInstance::build(snap.scheme, &snap.engine.graph, rotors)?;
        let mut workload = snap.workload.as_ref().map(|spec| spec.build(n));
        if let Some(w) = workload.as_mut() {
            if !w.restore_cursor(&snap.workload_cursor) {
                return Err(TenantError::Corrupt("workload cursor rejected".into()));
            }
        } else if !snap.workload_cursor.is_empty() {
            return Err(TenantError::Corrupt("cursor for an absent workload".into()));
        }
        let mut schedule = snap.schedule.build();
        if let Some(s) = schedule.as_mut() {
            if !s.restore_cursor(&snap.schedule_cursor) {
                return Err(TenantError::Corrupt("schedule cursor rejected".into()));
            }
        } else if !snap.schedule_cursor.is_empty() {
            return Err(TenantError::Corrupt("cursor for a static schedule".into()));
        }
        Ok(Tenant {
            engine: Engine::from_state(snap.engine),
            scheme,
            workload_spec: snap.workload,
            workload,
            schedule_spec: snap.schedule,
            schedule,
            journal,
            error: snap.error,
        })
    }

    /// Serializes the tenant's full resumable state.
    pub fn snapshot(&self) -> Vec<u8> {
        TenantSnapshot {
            engine: self.engine.export_state(),
            scheme: self.scheme.kind(),
            rotors: self.scheme.rotor_words(),
            error: self.error.clone(),
            workload: self.workload_spec.clone(),
            workload_cursor: self
                .workload
                .as_ref()
                .map(|w| w.cursor())
                .unwrap_or_default(),
            schedule: self.schedule_spec.clone(),
            schedule_cursor: self
                .schedule
                .as_ref()
                .map(|s| s.cursor())
                .unwrap_or_default(),
        }
        .encode()
    }

    /// Runs `rounds` more rounds, journaling every generator output.
    ///
    /// Returns `true` if the batch completed cleanly; `false` if the
    /// tenant was already stopped or stopped during the batch (the
    /// error is recorded in the journal and via [`Tenant::error`], and
    /// all subsequent batches are no-ops).
    pub fn run_rounds(&mut self, rounds: usize) -> bool {
        if self.error.is_some() || rounds == 0 {
            return false;
        }
        let mut event_log: Vec<(u64, Vec<TopologyEvent>)> = Vec::new();
        let mut inject_log: Vec<(u64, Vec<(u32, i64)>)> = Vec::new();
        let mut static_topo = StaticTopology;
        let mut no_workload = NoWorkload;
        let schedule_inner: &mut dyn TopologySchedule = match self.schedule.as_mut() {
            Some(s) => &mut **s,
            None => &mut static_topo,
        };
        let workload_inner: &mut dyn Workload = match self.workload.as_mut() {
            Some(w) => &mut **w,
            None => &mut no_workload,
        };
        let mut recording_schedule = RecordingSchedule {
            inner: schedule_inner,
            log: &mut event_log,
        };
        let mut recording_workload = RecordingWorkload {
            inner: workload_inner,
            log: &mut inject_log,
        };
        let result = match &mut self.scheme {
            SchemeInstance::Floor(b) => self.engine.run_kernel_dyn(
                b,
                rounds,
                Some(&mut recording_schedule),
                Some(&mut recording_workload),
            ),
            SchemeInstance::Round(b) => self.engine.run_kernel_dyn(
                b,
                rounds,
                Some(&mut recording_schedule),
                Some(&mut recording_workload),
            ),
            SchemeInstance::Rotor(b) => self.engine.run_kernel_dyn(
                b,
                rounds,
                Some(&mut recording_schedule),
                Some(&mut recording_workload),
            ),
            SchemeInstance::Star(b) => self.engine.run_fast_dyn(
                b,
                rounds,
                Some(&mut recording_schedule),
                Some(&mut recording_workload),
            ),
        };
        self.append_logs(event_log, inject_log);
        match result {
            Ok(()) => {
                self.journal.record_advance(self.engine.step_count() as u64);
                true
            }
            Err(e) => {
                // The erroring round rolled back, so step_count() is
                // the last completed round; replay must still attempt
                // the next round to reproduce the error.
                let through = error_step(&e)
                    .map(|s| s as u64)
                    .unwrap_or(self.engine.step_count() as u64 + 1);
                self.journal.record_advance(through);
                self.journal.record_error(&e);
                self.error = Some(e);
                false
            }
        }
    }

    /// Merges the per-round event and injection logs (both ascending
    /// in round) into journal round records.
    fn append_logs(
        &mut self,
        event_log: Vec<(u64, Vec<TopologyEvent>)>,
        inject_log: Vec<(u64, Vec<(u32, i64)>)>,
    ) {
        let mut events = event_log.into_iter().peekable();
        let mut deltas = inject_log.into_iter().peekable();
        loop {
            let next_round = match (events.peek(), deltas.peek()) {
                (Some(&(er, _)), Some(&(dr, _))) => er.min(dr),
                (Some(&(er, _)), None) => er,
                (None, Some(&(dr, _))) => dr,
                (None, None) => break,
            };
            let ev = match events.peek() {
                Some(&(r, _)) if r == next_round => {
                    events.next().map(|(_, e)| e).unwrap_or_default()
                }
                _ => Vec::new(),
            };
            let dv = match deltas.peek() {
                Some(&(r, _)) if r == next_round => {
                    deltas.next().map(|(_, d)| d).unwrap_or_default()
                }
                _ => Vec::new(),
            };
            self.journal.record_round(next_round, &ev, &dv);
        }
    }

    /// The terminal error, if the tenant has stopped.
    pub fn error(&self) -> Option<&EngineError> {
        self.error.as_ref()
    }

    /// Rounds completed so far (absolute, including pre-snapshot
    /// history for resumed tenants).
    pub fn rounds_done(&self) -> usize {
        self.engine.step_count()
    }

    /// The scheme this tenant runs.
    pub fn scheme(&self) -> SchemeKind {
        self.scheme.kind()
    }

    /// Current loads.
    pub fn loads(&self) -> &LoadVector {
        self.engine.loads()
    }

    /// The tenant's journal (header + base snapshot + records).
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// The path-independent outcome of the run so far.
    pub fn outcome(&self) -> TenantOutcome {
        let state = self.engine.export_state();
        TenantOutcome {
            loads: state.loads,
            step: state.step,
            negative_node_steps: state.negative_node_steps,
            injected_total: state.injected_total,
            topology_events_applied: state.topology_events_applied,
            graph: state.graph,
            rotors: self.scheme.rotor_words(),
            error: self.error.clone(),
        }
    }

    /// Replays a journal from its base snapshot: rebuilds the engine
    /// and scheme, feeds the recorded events/deltas back, and drives
    /// to the recorded horizon.
    ///
    /// # Errors
    ///
    /// Returns [`TenantError`] on an undecodable journal or recorded
    /// node indices outside the graph.
    pub fn replay(journal: &Journal) -> Result<TenantOutcome, TenantError> {
        let contents = journal.decode()?;
        let n = contents.base.engine.graph.num_nodes();
        for rec in &contents.rounds {
            if rec.deltas.iter().any(|&(u, _)| u as usize >= n) {
                return Err(TenantError::Corrupt(format!(
                    "journal round {} injects outside the graph",
                    rec.round
                )));
            }
        }
        let base_step = contents.base.engine.step as u64;
        let rotors = (!contents.base.rotors.is_empty()).then_some(contents.base.rotors.as_slice());
        let mut scheme =
            SchemeInstance::build(contents.base.scheme, &contents.base.engine.graph, rotors)?;
        let mut engine = Engine::from_state(contents.base.engine.clone());
        let mut error = contents.base.error.clone();
        if error.is_none() && contents.through_round > base_step {
            let steps = (contents.through_round - base_step) as usize;
            let mut replay_schedule = ReplaySchedule {
                records: &contents.rounds,
                idx: 0,
            };
            let mut replay_workload = ReplayWorkload {
                records: &contents.rounds,
                idx: 0,
            };
            let result = match &mut scheme {
                SchemeInstance::Floor(b) => engine.run_kernel_dyn(
                    b,
                    steps,
                    Some(&mut replay_schedule),
                    Some(&mut replay_workload),
                ),
                SchemeInstance::Round(b) => engine.run_kernel_dyn(
                    b,
                    steps,
                    Some(&mut replay_schedule),
                    Some(&mut replay_workload),
                ),
                SchemeInstance::Rotor(b) => engine.run_kernel_dyn(
                    b,
                    steps,
                    Some(&mut replay_schedule),
                    Some(&mut replay_workload),
                ),
                SchemeInstance::Star(b) => engine.run_fast_dyn(
                    b,
                    steps,
                    Some(&mut replay_schedule),
                    Some(&mut replay_workload),
                ),
            };
            if let Err(e) = result {
                error = Some(e);
            }
        }
        let state = engine.export_state();
        Ok(TenantOutcome {
            loads: state.loads,
            step: state.step,
            negative_node_steps: state.negative_node_steps,
            injected_total: state.injected_total,
            topology_events_applied: state.topology_events_applied,
            graph: state.graph,
            rotors: scheme.rotor_words(),
            error,
        })
    }

    /// Replays this tenant's own journal and compares against the live
    /// state — the serve layer's end-to-end integrity check.
    ///
    /// # Errors
    ///
    /// Returns [`TenantError`] if the journal fails to decode (replay
    /// *divergence* is the `Ok(false)` case, not an error).
    pub fn replay_matches(&self) -> Result<bool, TenantError> {
        Ok(Tenant::replay(&self.journal)? == self.outcome())
    }
}

fn error_step(e: &EngineError) -> Option<usize> {
    match e {
        EngineError::Overdraw { step, .. }
        | EngineError::NegativeLoad { step, .. }
        | EngineError::Topology { step, .. }
        | EngineError::WorkerPanic { step, .. } => Some(*step),
        EngineError::ShapeMismatch { .. } => None,
        _ => None,
    }
}

/// Wraps a live schedule, logging every emitted event (pre-validation)
/// keyed by round.
struct RecordingSchedule<'a> {
    inner: &'a mut dyn TopologySchedule,
    log: &'a mut Vec<(u64, Vec<TopologyEvent>)>,
}

impl TopologySchedule for RecordingSchedule<'_> {
    fn label(&self) -> String {
        self.inner.label()
    }

    fn events(&mut self, round: usize, graph: &RegularGraph, out: &mut Vec<TopologyEvent>) {
        let before = out.len();
        self.inner.events(round, graph, out);
        if out.len() > before {
            self.log.push((round as u64, out[before..].to_vec()));
        }
    }

    fn reset(&mut self) {
        self.inner.reset();
    }

    fn swap_shortfall(&self) -> Option<SwapShortfall> {
        self.inner.swap_shortfall()
    }

    fn validation_nanos(&self) -> u64 {
        self.inner.validation_nanos()
    }

    fn is_noop(&self) -> bool {
        self.inner.is_noop()
    }

    fn cursor(&self) -> Vec<u64> {
        self.inner.cursor()
    }

    fn restore_cursor(&mut self, cursor: &[u64]) -> bool {
        self.inner.restore_cursor(cursor)
    }
}

/// Wraps a live workload, logging the net per-round deltas (the engine
/// hands the workload a zeroed buffer, so the non-zero entries after
/// the inner call are exactly this round's net injection).
struct RecordingWorkload<'a> {
    inner: &'a mut dyn Workload,
    log: &'a mut Vec<(u64, Vec<(u32, i64)>)>,
}

impl RecordingWorkload<'_> {
    fn record(&mut self, round: usize, deltas: &[i64]) {
        let sparse: Vec<(u32, i64)> = deltas
            .iter()
            .enumerate()
            .filter(|&(_, &d)| d != 0)
            .map(|(u, &d)| (u as u32, d))
            .collect();
        if !sparse.is_empty() {
            self.log.push((round as u64, sparse));
        }
    }
}

impl Workload for RecordingWorkload<'_> {
    fn label(&self) -> String {
        self.inner.label()
    }

    fn inject(&mut self, round: usize, loads: &[i64], deltas: &mut [i64]) {
        self.inner.inject(round, loads, deltas);
        self.record(round, deltas);
    }

    fn inject_with_hint(
        &mut self,
        round: usize,
        loads: &[i64],
        argmax: Option<(usize, i64)>,
        deltas: &mut [i64],
    ) {
        self.inner.inject_with_hint(round, loads, argmax, deltas);
        self.record(round, deltas);
    }

    fn reset(&mut self) {
        self.inner.reset();
    }

    fn is_noop(&self) -> bool {
        self.inner.is_noop()
    }

    fn cursor(&self) -> Vec<u64> {
        self.inner.cursor()
    }

    fn restore_cursor(&mut self, cursor: &[u64]) -> bool {
        self.inner.restore_cursor(cursor)
    }
}

/// Feeds recorded topology events back, round by round.
struct ReplaySchedule<'a> {
    records: &'a [RoundRecord],
    idx: usize,
}

impl TopologySchedule for ReplaySchedule<'_> {
    fn label(&self) -> String {
        "replay".into()
    }

    fn events(&mut self, round: usize, _graph: &RegularGraph, out: &mut Vec<TopologyEvent>) {
        while self
            .records
            .get(self.idx)
            .is_some_and(|r| r.round < round as u64)
        {
            self.idx += 1;
        }
        if let Some(rec) = self.records.get(self.idx) {
            if rec.round == round as u64 {
                out.extend(rec.events.iter().cloned());
            }
        }
    }

    fn is_noop(&self) -> bool {
        // No recorded events anywhere: the replay is churn-free and the
        // vectorized kernel rounds stay eligible, like the live run.
        self.records.iter().all(|r| r.events.is_empty())
    }
}

/// Feeds recorded injection deltas back, round by round.
struct ReplayWorkload<'a> {
    records: &'a [RoundRecord],
    idx: usize,
}

impl Workload for ReplayWorkload<'_> {
    fn label(&self) -> String {
        "replay".into()
    }

    fn inject(&mut self, round: usize, _loads: &[i64], deltas: &mut [i64]) {
        while self
            .records
            .get(self.idx)
            .is_some_and(|r| r.round < round as u64)
        {
            self.idx += 1;
        }
        if let Some(rec) = self.records.get(self.idx) {
            if rec.round == round as u64 {
                for &(u, d) in &rec.deltas {
                    deltas[u as usize] += d;
                }
            }
        }
    }

    fn is_noop(&self) -> bool {
        self.records.iter().all(|r| r.deltas.is_empty())
    }
}
