//! The tenant snapshot format: full engine + scheme + generator state
//! as one self-contained byte string.
//!
//! A snapshot captures everything a [`Tenant`](crate::Tenant) needs to
//! resume **bit-identically**: the balancing graph (adjacency slots,
//! port numbering, sleep set, self-loop count), the load vector, every
//! engine counter ([`EngineState`]), the scheme's mutable state (rotor
//! positions), the workload/schedule *specs* plus their resumable
//! *cursors* (the [`Workload::cursor`](dlb_core::Workload::cursor) /
//! [`TopologySchedule::cursor`](dlb_topology::TopologySchedule::cursor)
//! protocol), and the tenant's terminal error, if any.
//!
//! Layout (all integers little-endian, see [`crate::wire`]):
//!
//! ```text
//! "DLBSNAP1"  u16 version
//! u64 n   u64 d   u64 d°   u32 adjacency[n·d]   u64 k   u32 asleep[k]
//! i64 loads[n]
//! u64 step   u64 negative_node_steps   i64 injected_total
//! u64 topology_events_applied   u64 discrepancy_scans   u64 negative_rescans
//! u8 vec_enabled   u8 strategy   u8 width  [i64 i32_limit]   u64 stats[5]
//! u8 scheme   u64 r   u64 rotors[r]
//! u8 error-tag  [error fields]
//! u8 has_workload  [u8 workload-tag  fields...]   u64 c   u64 cursor[c]
//! u8 schedule-tag  fields...                      u64 c   u64 cursor[c]
//! ```
//!
//! The spec/cursor split mirrors the generator protocol: configuration
//! travels as the spec (rebuildable from scratch), only the mutable
//! stream position travels as the cursor.

use dlb_core::{EngineError, EngineState, VectorConfig, VectorStats, VectorStrategy, VectorWidth};
use dlb_graph::{BalancingGraph, RegularGraph};
use dlb_scenario::WorkloadSpec;
use dlb_topology::ScheduleSpec;

use crate::wire::{Reader, WireError, Writer};

/// Magic tag opening every snapshot.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"DLBSNAP1";
/// Format version written by this build.
pub const SNAPSHOT_VERSION: u16 = 1;

/// Which balancing scheme a tenant runs.
///
/// The serve layer hosts the paper's four deterministic schemes; the
/// port order is always `PortOrder::Sequential` so a scheme rebuilt
/// from a snapshot re-derives identical port sequences from the
/// serialized graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchemeKind {
    /// SEND(⌊x/d⁺⌋) — stateless, kernel-capable.
    SendFloor,
    /// SEND(\[x/d⁺\]) — stateless, kernel-capable.
    SendRound,
    /// Rotor-router — per-node rotor state, kernel-capable.
    RotorRouter,
    /// ROTOR-ROUTER* — inner-rotor state, scalar path only.
    RotorRouterStar,
}

impl SchemeKind {
    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            SchemeKind::SendFloor => "send-floor",
            SchemeKind::SendRound => "send-round",
            SchemeKind::RotorRouter => "rotor-router",
            SchemeKind::RotorRouterStar => "rotor-router-star",
        }
    }

    fn tag(self) -> u8 {
        match self {
            SchemeKind::SendFloor => 0,
            SchemeKind::SendRound => 1,
            SchemeKind::RotorRouter => 2,
            SchemeKind::RotorRouterStar => 3,
        }
    }

    fn from_tag(tag: u8, at: usize) -> Result<SchemeKind, WireError> {
        match tag {
            0 => Ok(SchemeKind::SendFloor),
            1 => Ok(SchemeKind::SendRound),
            2 => Ok(SchemeKind::RotorRouter),
            3 => Ok(SchemeKind::RotorRouterStar),
            other => Err(WireError::new(at, format!("unknown scheme tag {other}"))),
        }
    }
}

/// Decoded snapshot contents.
///
/// [`Tenant::snapshot`](crate::Tenant::snapshot) produces the encoded
/// form; [`Tenant::resume_from_snapshot`](crate::Tenant::resume_from_snapshot)
/// consumes it. The struct is public so tests and tools can inspect a
/// snapshot without rebuilding a tenant.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSnapshot {
    /// Full engine state (graph, loads, counters, vector config/stats).
    pub engine: EngineState,
    /// The scheme the tenant runs.
    pub scheme: SchemeKind,
    /// Rotor positions for the rotor schemes; empty for SEND schemes.
    pub rotors: Vec<u64>,
    /// Terminal error, if the tenant has stopped.
    pub error: Option<EngineError>,
    /// Workload configuration; `None` for a closed system.
    pub workload: Option<WorkloadSpec>,
    /// The workload generator's resumable cursor.
    pub workload_cursor: Vec<u64>,
    /// Topology-schedule configuration ([`ScheduleSpec::Static`] for a
    /// fixed graph).
    pub schedule: ScheduleSpec,
    /// The schedule generator's resumable cursor.
    pub schedule_cursor: Vec<u64>,
}

impl TenantSnapshot {
    /// Encodes the snapshot.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.raw(SNAPSHOT_MAGIC);
        w.u16(SNAPSHOT_VERSION);
        encode_graph(&mut w, &self.engine.graph);
        for &x in &self.engine.loads {
            w.i64(x);
        }
        w.u64(self.engine.step as u64);
        w.u64(self.engine.negative_node_steps);
        w.i64(self.engine.injected_total);
        w.u64(self.engine.topology_events_applied);
        w.u64(self.engine.discrepancy_scans);
        w.u64(self.engine.negative_rescans);
        encode_vector(
            &mut w,
            &self.engine.vector_config,
            &self.engine.vector_stats,
        );
        w.u8(self.scheme.tag());
        w.u64(self.rotors.len() as u64);
        for &r in &self.rotors {
            w.u64(r);
        }
        encode_error(&mut w, self.error.as_ref());
        match &self.workload {
            None => w.u8(0),
            Some(spec) => {
                w.u8(1);
                encode_workload_spec(&mut w, spec);
            }
        }
        encode_cursor(&mut w, &self.workload_cursor);
        encode_schedule_spec(&mut w, &self.schedule);
        encode_cursor(&mut w, &self.schedule_cursor);
        w.into_bytes()
    }

    /// Decodes a snapshot, validating the magic, version and graph
    /// invariants.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on truncation, unknown tags, trailing
    /// bytes, or a serialized graph that fails the structural
    /// validation of [`RegularGraph::from_adjacency`].
    pub fn decode(bytes: &[u8]) -> Result<TenantSnapshot, WireError> {
        let mut r = Reader::new(bytes);
        let snap = Self::decode_from(&mut r)?;
        if !r.is_done() {
            return Err(WireError::new(
                r.offset(),
                format!("{} trailing bytes after snapshot", r.remaining()),
            ));
        }
        Ok(snap)
    }

    /// Decodes a snapshot from the reader's current position, leaving
    /// the reader just past it (the journal embeds a snapshot mid-
    /// stream).
    pub(crate) fn decode_from(r: &mut Reader<'_>) -> Result<TenantSnapshot, WireError> {
        r.magic(SNAPSHOT_MAGIC)?;
        let at = r.offset();
        let version = r.u16()?;
        if version != SNAPSHOT_VERSION {
            return Err(WireError::new(
                at,
                format!("unsupported snapshot version {version}"),
            ));
        }
        let graph = decode_graph(r)?;
        let n = graph.num_nodes();
        let mut loads = Vec::with_capacity(n);
        for _ in 0..n {
            loads.push(r.i64()?);
        }
        let step = r.len64()?;
        let negative_node_steps = r.u64()?;
        let injected_total = r.i64()?;
        let topology_events_applied = r.u64()?;
        let discrepancy_scans = r.u64()?;
        let negative_rescans = r.u64()?;
        let (vector_config, vector_stats) = decode_vector(r)?;
        let at = r.offset();
        let scheme = SchemeKind::from_tag(r.u8()?, at)?;
        let nrotors = r.len64()?;
        let mut rotors = Vec::with_capacity(nrotors.min(n));
        for _ in 0..nrotors {
            rotors.push(r.u64()?);
        }
        let error = decode_error(r)?;
        let workload = match r.u8()? {
            0 => None,
            1 => Some(decode_workload_spec(r)?),
            other => {
                return Err(WireError::new(
                    r.offset() - 1,
                    format!("workload presence byte must be 0/1, got {other}"),
                ))
            }
        };
        let workload_cursor = decode_cursor(r)?;
        let schedule = decode_schedule_spec(r)?;
        let schedule_cursor = decode_cursor(r)?;
        Ok(TenantSnapshot {
            engine: EngineState {
                graph,
                loads,
                step,
                negative_node_steps,
                injected_total,
                topology_events_applied,
                discrepancy_scans,
                negative_rescans,
                vector_config,
                vector_stats,
            },
            scheme,
            rotors,
            error,
            workload,
            workload_cursor,
            schedule,
            schedule_cursor,
        })
    }
}

fn encode_graph(w: &mut Writer, gp: &BalancingGraph) {
    let g = gp.graph();
    w.u64(g.num_nodes() as u64);
    w.u64(g.degree() as u64);
    w.u64(gp.num_self_loops() as u64);
    for &slot in g.adjacency_slots() {
        w.u32(slot);
    }
    w.u64(g.asleep_nodes().len() as u64);
    for &u in g.asleep_nodes() {
        w.u32(u);
    }
}

fn decode_graph(r: &mut Reader<'_>) -> Result<BalancingGraph, WireError> {
    let n = r.len64()?;
    let d = r.len64()?;
    let d_self = r.len64()?;
    let slots = n
        .checked_mul(d)
        .ok_or_else(|| WireError::new(r.offset(), format!("adjacency shape {n}x{d} overflows")))?;
    // Guard against a forged header demanding a huge allocation before
    // the (truncated) buffer runs out: each slot still costs 4 bytes.
    if r.remaining() < slots.saturating_mul(4) {
        return Err(WireError::new(
            r.offset(),
            format!("adjacency wants {slots} slots, buffer too short"),
        ));
    }
    let mut adjacency = Vec::with_capacity(slots);
    for _ in 0..slots {
        adjacency.push(r.u32()?);
    }
    let at = r.offset();
    let mut graph = RegularGraph::from_adjacency(n, d, adjacency)
        .map_err(|e| WireError::new(at, format!("invalid graph: {e}")))?;
    let asleep = r.len64()?;
    for _ in 0..asleep {
        let at = r.offset();
        let u = r.u32()? as usize;
        graph
            .apply_sleep(u)
            .map_err(|e| WireError::new(at, format!("invalid sleep set: {e}")))?;
    }
    let at = r.offset();
    BalancingGraph::with_self_loops(graph, d_self)
        .map_err(|e| WireError::new(at, format!("invalid self-loop count: {e}")))
}

fn encode_vector(w: &mut Writer, config: &VectorConfig, stats: &VectorStats) {
    w.u8(u8::from(config.enabled));
    w.u8(match config.strategy {
        VectorStrategy::Auto => 0,
        VectorStrategy::Banded => 1,
        VectorStrategy::BlockedCsr => 2,
    });
    match config.width {
        VectorWidth::Auto => w.u8(0),
        VectorWidth::I64 => w.u8(1),
        VectorWidth::I32 { limit } => {
            w.u8(2);
            w.i64(i64::from(limit));
        }
    }
    w.u64(stats.runs);
    w.u64(stats.rounds_banded);
    w.u64(stats.rounds_blocked);
    w.u64(stats.rounds_i32);
    w.u64(stats.i32_fallbacks);
}

fn decode_vector(r: &mut Reader<'_>) -> Result<(VectorConfig, VectorStats), WireError> {
    let enabled = r.u8()? != 0;
    let at = r.offset();
    let strategy = match r.u8()? {
        0 => VectorStrategy::Auto,
        1 => VectorStrategy::Banded,
        2 => VectorStrategy::BlockedCsr,
        other => {
            return Err(WireError::new(
                at,
                format!("unknown vector strategy {other}"),
            ))
        }
    };
    let at = r.offset();
    let width = match r.u8()? {
        0 => VectorWidth::Auto,
        1 => VectorWidth::I64,
        2 => {
            let at = r.offset();
            let limit = r.i64()?;
            let limit = i32::try_from(limit)
                .map_err(|_| WireError::new(at, format!("i32 limit {limit} out of range")))?;
            VectorWidth::I32 { limit }
        }
        other => return Err(WireError::new(at, format!("unknown vector width {other}"))),
    };
    let stats = VectorStats {
        runs: r.u64()?,
        rounds_banded: r.u64()?,
        rounds_blocked: r.u64()?,
        rounds_i32: r.u64()?,
        i32_fallbacks: r.u64()?,
    };
    Ok((
        VectorConfig {
            enabled,
            strategy,
            width,
        },
        stats,
    ))
}

pub(crate) fn encode_error(w: &mut Writer, error: Option<&EngineError>) {
    match error {
        None => w.u8(0),
        Some(EngineError::Overdraw {
            node,
            load,
            planned,
            step,
        }) => {
            w.u8(1);
            w.u64(*node as u64);
            w.i64(*load);
            w.u64(*planned);
            w.u64(*step as u64);
        }
        Some(EngineError::ShapeMismatch {
            expected_nodes,
            found_nodes,
        }) => {
            w.u8(2);
            w.u64(*expected_nodes as u64);
            w.u64(*found_nodes as u64);
        }
        Some(EngineError::NegativeLoad { node, load, step }) => {
            w.u8(3);
            w.u64(*node as u64);
            w.i64(*load);
            w.u64(*step as u64);
        }
        Some(EngineError::Topology { step, reason }) => {
            w.u8(4);
            w.u64(*step as u64);
            w.str(reason);
        }
        Some(EngineError::WorkerPanic { step, message }) => {
            w.u8(5);
            w.u64(*step as u64);
            w.str(message);
        }
        // `EngineError` is non_exhaustive; a variant added upstream
        // must grow a tag here before snapshots can carry it.
        Some(other) => {
            w.u8(5);
            w.u64(0);
            w.str(&other.to_string());
        }
    }
}

pub(crate) fn decode_error(r: &mut Reader<'_>) -> Result<Option<EngineError>, WireError> {
    let at = r.offset();
    Ok(match r.u8()? {
        0 => None,
        1 => Some(EngineError::Overdraw {
            node: r.len64()?,
            load: r.i64()?,
            planned: r.u64()?,
            step: r.len64()?,
        }),
        2 => Some(EngineError::ShapeMismatch {
            expected_nodes: r.len64()?,
            found_nodes: r.len64()?,
        }),
        3 => Some(EngineError::NegativeLoad {
            node: r.len64()?,
            load: r.i64()?,
            step: r.len64()?,
        }),
        4 => Some(EngineError::Topology {
            step: r.len64()?,
            reason: r.str()?,
        }),
        5 => Some(EngineError::WorkerPanic {
            step: r.len64()?,
            message: r.str()?,
        }),
        other => return Err(WireError::new(at, format!("unknown error tag {other}"))),
    })
}

fn encode_cursor(w: &mut Writer, cursor: &[u64]) {
    w.u64(cursor.len() as u64);
    for &word in cursor {
        w.u64(word);
    }
}

fn decode_cursor(r: &mut Reader<'_>) -> Result<Vec<u64>, WireError> {
    let len = r.len64()?;
    if r.remaining() < len.saturating_mul(8) {
        return Err(WireError::new(
            r.offset(),
            format!("cursor wants {len} words, buffer too short"),
        ));
    }
    let mut cursor = Vec::with_capacity(len);
    for _ in 0..len {
        cursor.push(r.u64()?);
    }
    Ok(cursor)
}

fn encode_workload_spec(w: &mut Writer, spec: &WorkloadSpec) {
    match *spec {
        WorkloadSpec::Steady { rate, seed } => {
            w.u8(0);
            w.u64(rate);
            w.u64(seed);
        }
        WorkloadSpec::Bursty {
            on,
            off,
            rate,
            seed,
        } => {
            w.u8(1);
            w.u64(on as u64);
            w.u64(off as u64);
            w.u64(rate);
            w.u64(seed);
        }
        WorkloadSpec::Hotspot { rate } => {
            w.u8(2);
            w.u64(rate);
        }
        WorkloadSpec::Drain { rate } => {
            w.u8(3);
            w.u64(rate);
        }
        WorkloadSpec::DrainUnclamped { rate } => {
            w.u8(4);
            w.u64(rate);
        }
        WorkloadSpec::Adversary { budget } => {
            w.u8(5);
            w.u64(budget);
        }
        WorkloadSpec::ArriveAndDrain { rate, seed } => {
            w.u8(6);
            w.u64(rate);
            w.u64(seed);
        }
    }
}

fn decode_workload_spec(r: &mut Reader<'_>) -> Result<WorkloadSpec, WireError> {
    let at = r.offset();
    Ok(match r.u8()? {
        0 => WorkloadSpec::Steady {
            rate: r.u64()?,
            seed: r.u64()?,
        },
        1 => WorkloadSpec::Bursty {
            on: r.len64()?,
            off: r.len64()?,
            rate: r.u64()?,
            seed: r.u64()?,
        },
        2 => WorkloadSpec::Hotspot { rate: r.u64()? },
        3 => WorkloadSpec::Drain { rate: r.u64()? },
        4 => WorkloadSpec::DrainUnclamped { rate: r.u64()? },
        5 => WorkloadSpec::Adversary { budget: r.u64()? },
        6 => WorkloadSpec::ArriveAndDrain {
            rate: r.u64()?,
            seed: r.u64()?,
        },
        other => return Err(WireError::new(at, format!("unknown workload tag {other}"))),
    })
}

fn encode_schedule_spec(w: &mut Writer, spec: &ScheduleSpec) {
    match *spec {
        ScheduleSpec::Static => w.u8(0),
        ScheduleSpec::Periodic {
            period,
            swaps,
            seed,
        } => {
            w.u8(1);
            w.u64(period as u64);
            w.u64(swaps as u64);
            w.u64(seed);
        }
        ScheduleSpec::Failure {
            fail_pct,
            recover_pct,
            max_down,
            seed,
        } => {
            w.u8(2);
            w.u32(fail_pct);
            w.u32(recover_pct);
            w.u64(max_down as u64);
            w.u64(seed);
        }
        ScheduleSpec::Burst {
            fail_at,
            wake_at,
            count,
            seed,
        } => {
            w.u8(3);
            w.u64(fail_at as u64);
            w.u64(wake_at as u64);
            w.u64(count as u64);
            w.u64(seed);
        }
        ScheduleSpec::CutTargeting { period } => {
            w.u8(4);
            w.u64(period as u64);
        }
        ScheduleSpec::Churn {
            period,
            swaps,
            fail_pct,
            max_down,
            seed,
        } => {
            w.u8(5);
            w.u64(period as u64);
            w.u64(swaps as u64);
            w.u32(fail_pct);
            w.u64(max_down as u64);
            w.u64(seed);
        }
    }
}

fn decode_schedule_spec(r: &mut Reader<'_>) -> Result<ScheduleSpec, WireError> {
    let at = r.offset();
    Ok(match r.u8()? {
        0 => ScheduleSpec::Static,
        1 => ScheduleSpec::Periodic {
            period: r.len64()?,
            swaps: r.len64()?,
            seed: r.u64()?,
        },
        2 => ScheduleSpec::Failure {
            fail_pct: r.u32()?,
            recover_pct: r.u32()?,
            max_down: r.len64()?,
            seed: r.u64()?,
        },
        3 => ScheduleSpec::Burst {
            fail_at: r.len64()?,
            wake_at: r.len64()?,
            count: r.len64()?,
            seed: r.u64()?,
        },
        4 => ScheduleSpec::CutTargeting { period: r.len64()? },
        5 => ScheduleSpec::Churn {
            period: r.len64()?,
            swaps: r.len64()?,
            fail_pct: r.u32()?,
            max_down: r.len64()?,
            seed: r.u64()?,
        },
        other => return Err(WireError::new(at, format!("unknown schedule tag {other}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_core::{Engine, LoadVector};
    use dlb_graph::generators;

    fn sample_snapshot() -> TenantSnapshot {
        let gp = BalancingGraph::lazy(generators::cycle(8).unwrap());
        let mut engine = Engine::new(gp, LoadVector::point_mass(8, 240));
        let mut bal = dlb_core::schemes::SendFloor::new();
        engine.run(&mut bal, 5).unwrap();
        TenantSnapshot {
            engine: engine.export_state(),
            scheme: SchemeKind::RotorRouter,
            rotors: vec![1, 3, 0, 2, 1, 0, 3, 2],
            error: Some(EngineError::Topology {
                step: 4,
                reason: "swap rejected: absent edge".into(),
            }),
            workload: Some(WorkloadSpec::Bursty {
                on: 3,
                off: 2,
                rate: 16,
                seed: 7,
            }),
            workload_cursor: vec![11, 22, 33, 44],
            schedule: ScheduleSpec::Burst {
                fail_at: 4,
                wake_at: 12,
                count: 2,
                seed: 17,
            },
            schedule_cursor: vec![1, 2, 3, 4, 1, 5],
        }
    }

    #[test]
    fn snapshot_roundtrips_bit_identically() {
        let snap = sample_snapshot();
        let bytes = snap.encode();
        let decoded = TenantSnapshot::decode(&bytes).unwrap();
        assert_eq!(decoded, snap);
        // Re-encoding the decoded snapshot yields the same bytes: the
        // format is canonical.
        assert_eq!(decoded.encode(), bytes);
    }

    #[test]
    fn snapshot_preserves_sleep_sets_and_churned_graphs() {
        let mut snap = sample_snapshot();
        let g = snap.engine.graph.graph_mut();
        g.apply_swap(0, 1, 4, 5).unwrap();
        g.apply_sleep(2).unwrap();
        g.apply_sleep(6).unwrap();
        let bytes = snap.encode();
        let decoded = TenantSnapshot::decode(&bytes).unwrap();
        assert_eq!(decoded.engine.graph, snap.engine.graph);
        assert_eq!(decoded.engine.graph.graph().asleep_nodes(), &[2, 6]);
    }

    #[test]
    fn every_error_variant_roundtrips() {
        let errors = [
            None,
            Some(EngineError::Overdraw {
                node: 3,
                load: -5,
                planned: 9,
                step: 12,
            }),
            Some(EngineError::ShapeMismatch {
                expected_nodes: 8,
                found_nodes: 4,
            }),
            Some(EngineError::NegativeLoad {
                node: 1,
                load: -2,
                step: 5,
            }),
            Some(EngineError::Topology {
                step: 7,
                reason: "double sleep".into(),
            }),
            Some(EngineError::WorkerPanic {
                step: 2,
                message: "boom".into(),
            }),
        ];
        for err in errors {
            let mut w = Writer::new();
            encode_error(&mut w, err.as_ref());
            let bytes = w.into_bytes();
            let mut r = Reader::new(&bytes);
            assert_eq!(decode_error(&mut r).unwrap(), err);
            assert!(r.is_done());
        }
    }

    #[test]
    fn every_spec_variant_roundtrips() {
        let workloads = [
            WorkloadSpec::Steady { rate: 5, seed: 1 },
            WorkloadSpec::Bursty {
                on: 2,
                off: 3,
                rate: 7,
                seed: 9,
            },
            WorkloadSpec::Hotspot { rate: 4 },
            WorkloadSpec::Drain { rate: 2 },
            WorkloadSpec::DrainUnclamped { rate: 3 },
            WorkloadSpec::Adversary { budget: 6 },
            WorkloadSpec::ArriveAndDrain { rate: 8, seed: 2 },
        ];
        for spec in workloads {
            let mut w = Writer::new();
            encode_workload_spec(&mut w, &spec);
            let bytes = w.into_bytes();
            let mut r = Reader::new(&bytes);
            assert_eq!(decode_workload_spec(&mut r).unwrap(), spec);
            assert!(r.is_done());
        }
        let schedules = [
            ScheduleSpec::Static,
            ScheduleSpec::Periodic {
                period: 3,
                swaps: 2,
                seed: 11,
            },
            ScheduleSpec::Failure {
                fail_pct: 5,
                recover_pct: 50,
                max_down: 2,
                seed: 13,
            },
            ScheduleSpec::Burst {
                fail_at: 4,
                wake_at: 9,
                count: 3,
                seed: 17,
            },
            ScheduleSpec::CutTargeting { period: 6 },
            ScheduleSpec::Churn {
                period: 4,
                swaps: 1,
                fail_pct: 10,
                max_down: 1,
                seed: 19,
            },
        ];
        for spec in schedules {
            let mut w = Writer::new();
            encode_schedule_spec(&mut w, &spec);
            let bytes = w.into_bytes();
            let mut r = Reader::new(&bytes);
            assert_eq!(decode_schedule_spec(&mut r).unwrap(), spec);
            assert!(r.is_done());
        }
    }

    #[test]
    fn corrupted_snapshots_error_instead_of_panicking() {
        let bytes = sample_snapshot().encode();
        // Truncation at every prefix length must yield Err, not panic.
        for cut in 0..bytes.len() {
            assert!(TenantSnapshot::decode(&bytes[..cut]).is_err(), "cut {cut}");
        }
        // Trailing garbage is rejected too.
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(TenantSnapshot::decode(&padded).is_err());
        // A forged adjacency (self-edge) fails graph validation.
        let mut forged = bytes;
        // n=8, d=2: first adjacency slot sits after magic+version+3×u64.
        let slot0 = 8 + 2 + 24;
        forged[slot0..slot0 + 4].copy_from_slice(&0u32.to_le_bytes());
        assert!(TenantSnapshot::decode(&forged).is_err());
    }
}
