//! Incrementally maintained dynamic connectivity for the churn layer.
//!
//! The rewiring generators in `dlb-topology` must guarantee that every
//! emitted double-edge swap preserves connectivity. Until PR 6 they
//! validated each candidate with a full [`crate::traversal::is_connected`]
//! BFS on a scratch graph — `O(n·d)` **per candidate**, the cost that
//! collapsed churn throughput in the PR 5 sweep. This module replaces
//! that oracle with an incrementally maintained spanning structure in
//! the spirit of Holm–de Lichtenberg–Thorup ("HDT-lite"):
//!
//! * a **spanning forest** with per-edge tree/non-tree classification,
//!   stored flat: every node owns exactly `d` edge slots (a d-regular
//!   graph never holds more, and the swap primitive deletes before it
//!   inserts), so the whole structure is two cache-friendly arrays;
//! * **edge levels** `0..=⌈log₂ n⌉`: on a tree-edge deletion the
//!   replacement search walks the smaller side of the split at the
//!   edge's level via a lockstep (alternating) bidirectional BFS,
//!   promotes the smaller side's tree and same-side non-tree edges one
//!   level up, and descends a level when no crossing edge is found —
//!   the standard amortisation argument that makes repeated deletions
//!   in the same region cheap;
//! * **union-by-size component labels**: `is_connected` is a counter
//!   compare, and merging on tree-edge insertion relabels only the
//!   smaller component.
//!
//! The structure answers [`DynamicConnectivity::would_disconnect`] for
//! a candidate swap in amortised near-`O(d)` by applying the swap,
//! comparing the component count, and undoing it. Undo restores a
//! *correct* state (a valid spanning forest and exact component
//! count), not a bit-identical one: level promotions are monotone and
//! persist across undos, which is exactly what keeps the global
//! amortisation valid under the generators' apply/rollback probing.
//!
//! **2-regular fast path.** A 2-regular graph is a disjoint union of
//! simple cycles, and it is exactly the regime where the forest walk
//! degenerates (every edge is essentially a tree edge and replacements
//! sit half a cycle away). For `d == 2` the structure therefore keeps
//! each ring as a circular list of **arcs** over a fixed anchor tour
//! (`ring_node_at` / `ring_pos`, built once per rebuild): an arc is a
//! contiguous anchor segment walked forward or backward. A swap only
//! ever cuts two edges and splices two, so it touches at most two arc
//! boundaries: a candidate probe orients both cut edges along the
//! traversal (`O(arcs)` to locate, `O(1)` to classify — a same-ring
//! swap splits iff the chain between the cuts has both endpoints on
//! one inserted edge, and a cross-ring swap always merges), and an
//! *applied* swap is pure segment bookkeeping — a 2-opt flips
//! direction flags instead of rewriting `O(min side)` pointers, so no
//! per-node work is ever paid. The arc count grows by at most two per
//! applied swap (shrinking again under compaction when an undo
//! restores contiguity), so a burst of `k` swaps costs `O(k²)` tiny
//! vector ops rather than `O(k·n)` walks. The representation is chosen
//! per snapshot in [`DynamicConnectivity::rebuild`].
//!
//! Sleep and wake events do not touch adjacency, so they are no-ops
//! here — mirroring how [`crate::traversal::is_connected`] treats
//! asleep nodes as still physically wired.

use crate::mutate::TopologyEvent;
use crate::regular::{NodeId, RegularGraph};

/// One directed copy of an edge in the flat per-node slot table.
#[derive(Debug, Clone, Copy)]
struct Slot {
    /// The neighbour this slot leads to.
    to: u32,
    /// HDT level of the (undirected) edge; kept equal on both copies.
    level: u8,
    /// Whether the edge is in the spanning forest.
    tree: bool,
}

const NO_COMP: u32 = u32::MAX;

/// Incremental dynamic connectivity over a [`RegularGraph`]'s edge set.
///
/// Built from a graph snapshot with [`DynamicConnectivity::new`] (or
/// re-anchored in place with [`DynamicConnectivity::rebuild`], which
/// reuses every allocation), then kept coherent by mirroring each
/// applied swap with [`DynamicConnectivity::apply_swap`] and each
/// rolled-back swap with [`DynamicConnectivity::undo_swap`].
///
/// All swap mutators share the preconditions of
/// [`RegularGraph::apply_swap`]: `a, b, c, d` pairwise distinct, edges
/// `{a,b}` and `{c,d}` present, edges `{a,c}` and `{b,d}` absent.
/// Callers (the topology generators and the engine's checked drive
/// path) validate candidates against the graph first, so violations
/// are programming errors and panic in debug builds.
#[derive(Debug, Clone)]
pub struct DynamicConnectivity {
    n: usize,
    /// Slots per node — the graph degree.
    cap: usize,
    /// Highest level an edge may be promoted to (`⌈log₂ n⌉`).
    max_level: u8,
    /// `n × cap` slot table; per-node prefix of length `len[u]` is live.
    slots: Vec<Slot>,
    len: Vec<u32>,
    /// Component label per node, indexing `comp_size`.
    comp: Vec<u32>,
    comp_size: Vec<u32>,
    free_labels: Vec<u32>,
    components: usize,
    /// Epoch-stamped visit marks for the lockstep searches.
    mark: Vec<u32>,
    epoch: u32,
    /// Reusable BFS queues / side lists.
    qa: Vec<u32>,
    qb: Vec<u32>,
    /// BFS parent scratch for `rebuild`'s tree classification.
    parent: Vec<u32>,
    /// Whether the 2-regular ring representation is active (chosen by
    /// `rebuild` when the snapshot has degree 2). When set, the arc
    /// lists are authoritative and the slot table stays empty.
    cycle_rep: bool,
    /// Anchor tour for the ring representation: one contiguous block
    /// of `ring_node_at` per original ring; `ring_pos` inverts it.
    ring_node_at: Vec<u32>,
    ring_pos: Vec<u32>,
    /// Live rings as circular arc lists, indexed by component label
    /// (freed labels keep an empty list). `comp` is *not* maintained
    /// in this representation — `same_component` locates instead.
    rings: Vec<Vec<Arc>>,
    /// Chain-extraction scratch.
    scratch_p: Vec<Arc>,
    scratch_q: Vec<Arc>,
}

/// One contiguous segment of the anchor tour, walked forward
/// (`rev == false`: positions `start..start+len`) or backward.
#[derive(Debug, Clone, Copy)]
struct Arc {
    start: u32,
    len: u32,
    rev: bool,
}

impl Arc {
    /// Anchor position of the first node in traversal order.
    #[inline]
    fn head_pos(self) -> u32 {
        if self.rev {
            self.start + self.len - 1
        } else {
            self.start
        }
    }

    /// Anchor position of the last node in traversal order.
    #[inline]
    fn tail_pos(self) -> u32 {
        if self.rev {
            self.start
        } else {
            self.start + self.len - 1
        }
    }
}

/// Writes `src` into `dst`, merging adjacent arcs that are contiguous
/// on the anchor tour and share a direction — the compaction that lets
/// an undo shrink the arc list back instead of fragmenting forever.
fn compact_into(dst: &mut Vec<Arc>, src: &[Arc]) {
    dst.clear();
    for &arc in src {
        if let Some(last) = dst.last_mut() {
            if !last.rev && !arc.rev && last.start + last.len == arc.start {
                last.len += arc.len;
                continue;
            }
            if last.rev && arc.rev && arc.start + arc.len == last.start {
                last.start = arc.start;
                last.len += arc.len;
                continue;
            }
        }
        dst.push(arc);
    }
}

/// Reverses a chain in place: arc order flips and every arc's
/// direction toggles; the chain's head and tail trade places.
fn flip_chain(chain: &mut [Arc]) {
    chain.reverse();
    for arc in chain {
        arc.rev = !arc.rev;
    }
}

impl DynamicConnectivity {
    /// Builds the structure from a graph snapshot in `O(n·d)`.
    #[must_use]
    pub fn new(graph: &RegularGraph) -> Self {
        let mut dc = DynamicConnectivity {
            n: 0,
            cap: 0,
            max_level: 0,
            slots: Vec::new(),
            len: Vec::new(),
            comp: Vec::new(),
            comp_size: Vec::new(),
            free_labels: Vec::new(),
            components: 0,
            mark: Vec::new(),
            epoch: 0,
            qa: Vec::new(),
            qb: Vec::new(),
            parent: Vec::new(),
            cycle_rep: false,
            ring_node_at: Vec::new(),
            ring_pos: Vec::new(),
            rings: Vec::new(),
            scratch_p: Vec::new(),
            scratch_q: Vec::new(),
        };
        dc.rebuild(graph);
        dc
    }

    /// Re-anchors the structure to a (possibly different) graph
    /// snapshot, reusing every allocation — the per-emitting-round
    /// path in the rewiring generators.
    pub fn rebuild(&mut self, graph: &RegularGraph) {
        let n = graph.num_nodes();
        let d = graph.degree();
        self.n = n;
        self.cap = d;
        // ⌈log₂ n⌉, the classic HDT level bound (promotion halves the
        // side it runs on, so a level-l tree spans ≥ 2^l nodes).
        self.max_level = if n <= 1 {
            0
        } else {
            (usize::BITS - (n - 1).leading_zeros()) as u8
        };
        if d == 2 {
            self.rebuild_cycles(graph);
        } else {
            self.rebuild_forest(graph);
        }
    }

    /// General-degree rebuild path: BFS spanning forest plus level-0
    /// non-tree classification. `O(n·d)`.
    fn rebuild_forest(&mut self, graph: &RegularGraph) {
        let n = self.n;
        let d = self.cap;
        self.cycle_rep = false;
        self.ring_node_at.clear();
        self.ring_pos.clear();
        self.rings.clear();
        self.slots.clear();
        self.slots.resize(
            n * d,
            Slot {
                to: 0,
                level: 0,
                tree: false,
            },
        );
        self.len.clear();
        self.len.resize(n, 0);
        self.comp.clear();
        self.comp.resize(n, NO_COMP);
        self.comp_size.clear();
        self.free_labels.clear();
        self.components = 0;
        self.mark.clear();
        self.mark.resize(n, 0);
        self.epoch = 0;
        self.parent.clear();
        self.parent.resize(n, NO_COMP);

        // One BFS per component: discovery edges are tree edges.
        let mut queue = std::mem::take(&mut self.qa);
        for root in 0..n {
            if self.comp[root] != NO_COMP {
                continue;
            }
            let label = self.comp_size.len() as u32;
            self.comp_size.push(0);
            self.components += 1;
            queue.clear();
            queue.push(root as u32);
            self.comp[root] = label;
            let mut head = 0usize;
            let mut size = 0u32;
            while head < queue.len() {
                let u = queue[head] as usize;
                head += 1;
                size += 1;
                for &v in graph.neighbors(u) {
                    let vu = v as usize;
                    if self.comp[vu] == NO_COMP {
                        self.comp[vu] = label;
                        self.parent[vu] = u as u32;
                        self.push_slot(u, v, 0, true);
                        self.push_slot(vu, u as u32, 0, true);
                        queue.push(v);
                    }
                }
            }
            self.comp_size[label as usize] = size;
        }
        self.qa = queue;

        // Second pass: every edge not claimed by a BFS discovery is a
        // non-tree edge at level 0. `parent` makes the test O(1).
        for u in 0..n {
            for &v in graph.neighbors(u) {
                let vu = v as usize;
                if vu > u && self.parent[vu] != u as u32 && self.parent[u] != v {
                    self.push_slot(u, v, 0, false);
                    self.push_slot(vu, u as u32, 0, false);
                }
            }
        }
    }

    /// Rebuild path for 2-regular snapshots: lay the rings out as the
    /// anchor tour (one contiguous block each) and represent every
    /// ring by a single forward arc. `O(n)`.
    fn rebuild_cycles(&mut self, graph: &RegularGraph) {
        let n = self.n;
        self.cycle_rep = true;
        self.slots.clear();
        self.len.clear();
        self.mark.clear();
        self.parent.clear();
        self.comp.clear();
        self.comp.resize(n, NO_COMP);
        self.comp_size.clear();
        self.free_labels.clear();
        self.components = 0;
        self.rings.clear();
        self.ring_node_at.clear();
        self.ring_node_at.resize(n, 0);
        self.ring_pos.clear();
        self.ring_pos.resize(n, 0);
        let mut cursor = 0u32;
        for root in 0..n {
            if self.comp[root] != NO_COMP {
                continue;
            }
            let label = self.comp_size.len() as u32;
            self.components += 1;
            let start = cursor;
            // Walk the ring: the successor of `cur` is whichever
            // neighbour we did not just come from (port 0 seeds the
            // orientation at the root).
            let mut prev_node = root;
            let mut cur = root;
            loop {
                let nb = graph.neighbors(cur);
                let nxt = if cursor == start || nb[0] as usize != prev_node {
                    nb[0] as usize
                } else {
                    nb[1] as usize
                };
                self.comp[cur] = label;
                self.ring_node_at[cursor as usize] = cur as u32;
                self.ring_pos[cur] = cursor;
                cursor += 1;
                prev_node = cur;
                cur = nxt;
                if cur == root {
                    break;
                }
            }
            let size = cursor - start;
            self.comp_size.push(size);
            self.rings.push(vec![Arc {
                start,
                len: size,
                rev: false,
            }]);
        }
        debug_assert_eq!(cursor as usize, n);
    }

    /// Ring label and arc index holding `v`. `O(total arcs)`.
    fn ring_locate(&self, v: NodeId) -> (usize, usize) {
        let p = self.ring_pos[v];
        for (label, arcs) in self.rings.iter().enumerate() {
            for (i, arc) in arcs.iter().enumerate() {
                if p >= arc.start && p < arc.start + arc.len {
                    return (label, i);
                }
            }
        }
        unreachable!("node {v} not on any ring")
    }

    /// Traversal successor of `v`, which sits in `rings[label][arc_idx]`.
    fn ring_succ(&self, label: usize, arc_idx: usize, v: NodeId) -> usize {
        let arcs = &self.rings[label];
        let arc = arcs[arc_idx];
        let p = self.ring_pos[v];
        if arc.rev {
            if p > arc.start {
                return self.ring_node_at[p as usize - 1] as usize;
            }
        } else if p + 1 < arc.start + arc.len {
            return self.ring_node_at[p as usize + 1] as usize;
        }
        let next = arcs[(arc_idx + 1) % arcs.len()];
        self.ring_node_at[next.head_pos() as usize] as usize
    }

    /// Orients the tracked edge `{u, v}` along the traversal:
    /// returns `(pred, other, ring label)` with pred → other.
    fn ring_orient_edge(&self, u: NodeId, v: NodeId) -> (usize, usize, usize) {
        let (label, i) = self.ring_locate(u);
        if self.ring_succ(label, i, u) == v {
            (u, v, label)
        } else {
            debug_assert_eq!(
                {
                    let (lv, iv) = self.ring_locate(v);
                    self.ring_succ(lv, iv, v)
                },
                u,
                "edge {{{u},{v}}} not tracked"
            );
            (v, u, label)
        }
    }

    /// Whether the swap splits a ring, given the oriented cut edges:
    /// the chain between the two cut boundaries runs other1 → … →
    /// pred2, and it closes on itself exactly when its endpoints are
    /// one of the inserted pairs `{a,c}` / `{b,d}`.
    #[inline]
    fn ring_splits(o1: usize, p2: usize, a: NodeId, b: NodeId, c: NodeId, d: NodeId) -> bool {
        (o1 == a && p2 == c) || (o1 == c && p2 == a) || (o1 == b && p2 == d) || (o1 == d && p2 == b)
    }

    /// Component-count delta of the swap on the ring representation —
    /// pure, `O(arcs)`.
    fn ring_delta(&self, a: NodeId, b: NodeId, c: NodeId, d: NodeId) -> isize {
        let (_p1, o1, l1) = self.ring_orient_edge(a, b);
        let (p2, _o2, l2) = self.ring_orient_edge(c, d);
        if l1 != l2 {
            -1
        } else if Self::ring_splits(o1, p2, a, b, c, d) {
            1
        } else {
            0
        }
    }

    /// Ensures an arc boundary immediately after `pred` in its ring's
    /// traversal, splitting `pred`'s arc if the boundary is interior.
    fn ring_cut_after(&mut self, label: usize, pred: NodeId) {
        let p = self.ring_pos[pred];
        let arcs = &mut self.rings[label];
        let i = arcs
            .iter()
            .position(|arc| p >= arc.start && p < arc.start + arc.len)
            .expect("pred on its ring");
        let arc = arcs[i];
        if p == arc.tail_pos() {
            return;
        }
        let (first, second) = if arc.rev {
            (
                Arc {
                    start: p,
                    len: arc.start + arc.len - p,
                    rev: true,
                },
                Arc {
                    start: arc.start,
                    len: p - arc.start,
                    rev: true,
                },
            )
        } else {
            (
                Arc {
                    start: arc.start,
                    len: p - arc.start + 1,
                    rev: false,
                },
                Arc {
                    start: p + 1,
                    len: arc.start + arc.len - (p + 1),
                    rev: false,
                },
            )
        };
        arcs[i] = first;
        arcs.insert(i + 1, second);
    }

    /// Index of the arc in `rings[label]` whose traversal tail is
    /// `pred` (which must sit at an arc boundary, see `ring_cut_after`).
    fn ring_boundary_index(&self, label: usize, pred: NodeId) -> usize {
        let p = self.ring_pos[pred];
        self.rings[label]
            .iter()
            .position(|arc| arc.tail_pos() == p)
            .expect("pred at an arc boundary")
    }

    /// Ring-representation swap: cut the two edges at their arc
    /// boundaries, then rearrange whole arcs — `O(arcs)`, no per-node
    /// work.
    fn ring_apply_swap(&mut self, a: NodeId, b: NodeId, c: NodeId, d: NodeId) {
        let (p1, o1, l1) = self.ring_orient_edge(a, b);
        self.ring_cut_after(l1, p1);
        let (p2, o2, l2) = self.ring_orient_edge(c, d);
        self.ring_cut_after(l2, p2);
        let i1 = self.ring_boundary_index(l1, p1);
        let i2 = self.ring_boundary_index(l2, p2);
        let mut pa = std::mem::take(&mut self.scratch_p);
        let mut qa = std::mem::take(&mut self.scratch_q);

        if l1 != l2 {
            // Cross-ring merge. Linearize both rings at their cuts:
            // chain A = o1 … p1, chain C = o2 … p2. The inserted edge
            // at A's tail decides C's orientation in the merged ring.
            Self::chain_from(&self.rings[l1], i1, &mut pa);
            Self::chain_from(&self.rings[l2], i2, &mut qa);
            let partner = if p1 == a { c } else { d };
            if partner == o2 {
                // a → c or b → d junction lines up: A ++ C.
            } else {
                debug_assert_eq!(partner, p2, "inserted edge must meet chain C at an end");
                // Tail meets tail: reverse the chain with fewer arcs.
                if qa.len() <= pa.len() {
                    flip_chain(&mut qa);
                } else {
                    flip_chain(&mut pa);
                    std::mem::swap(&mut pa, &mut qa);
                }
            }
            pa.extend_from_slice(&qa);
            let (keep, absorbed) = if self.comp_size[l1] >= self.comp_size[l2] {
                (l1, l2)
            } else {
                (l2, l1)
            };
            compact_into(&mut self.rings[keep], &pa);
            self.rings[absorbed].clear();
            self.comp_size[keep] += self.comp_size[absorbed];
            self.free_labels.push(absorbed as u32);
            self.components -= 1;
        } else {
            // Same ring: the two cuts leave chains P = o1 … p2 and
            // Q = o2 … p1 (arc index ranges (i1, i2] and (i2, i1]).
            let arcs = &self.rings[l1];
            let m = arcs.len();
            pa.clear();
            qa.clear();
            let (mut psize, mut qsize) = (0u32, 0u32);
            let mut k = (i1 + 1) % m;
            loop {
                pa.push(arcs[k]);
                psize += arcs[k].len;
                if k == i2 {
                    break;
                }
                k = (k + 1) % m;
            }
            let mut k = (i2 + 1) % m;
            loop {
                qa.push(arcs[k]);
                qsize += arcs[k].len;
                if k == i1 {
                    break;
                }
                k = (k + 1) % m;
            }
            if Self::ring_splits(o1, p2, a, b, c, d) {
                // P and Q each close on an inserted edge: split. The
                // smaller ring takes a fresh label (mirroring the
                // forest's union-by-size convention).
                let fresh = self.alloc_label() as usize;
                if self.rings.len() <= fresh {
                    self.rings.resize_with(fresh + 1, Vec::new);
                }
                let (big, big_size, small, small_size) = if psize >= qsize {
                    (&pa, psize, &qa, qsize)
                } else {
                    (&qa, qsize, &pa, psize)
                };
                compact_into(&mut self.rings[l1], big);
                let mut freshly = std::mem::take(&mut self.rings[fresh]);
                compact_into(&mut freshly, small);
                self.rings[fresh] = freshly;
                self.comp_size[l1] = big_size;
                self.comp_size[fresh] = small_size;
                self.components += 1;
            } else {
                // 2-opt: the inserted edges are {p1,p2} and {o1,o2},
                // so the new ring is Q ++ flip(P) (equivalently
                // flip(Q) ++ P) — reverse whichever has fewer arcs.
                if pa.len() <= qa.len() {
                    flip_chain(&mut pa);
                    qa.extend_from_slice(&pa);
                    compact_into(&mut self.rings[l1], &qa);
                } else {
                    flip_chain(&mut qa);
                    qa.extend_from_slice(&pa);
                    compact_into(&mut self.rings[l1], &qa);
                }
            }
        }
        self.scratch_p = pa;
        self.scratch_q = qa;
    }

    /// The whole circular arc list of a ring, linearized to start
    /// right after arc `j` (so the chain's tail is arc `j`'s tail).
    fn chain_from(arcs: &[Arc], j: usize, out: &mut Vec<Arc>) {
        out.clear();
        let m = arcs.len();
        for k in 1..=m {
            out.push(arcs[(j + k) % m]);
        }
    }

    /// Whether the tracked edge set forms a single connected component.
    #[must_use]
    pub fn is_connected(&self) -> bool {
        self.components == 1
    }

    /// The number of connected components.
    #[must_use]
    pub fn num_components(&self) -> usize {
        self.components
    }

    /// Whether `u` and `v` are currently in the same component.
    #[must_use]
    pub fn same_component(&self, u: NodeId, v: NodeId) -> bool {
        if self.cycle_rep {
            return self.ring_locate(u).0 == self.ring_locate(v).0;
        }
        self.comp[u] == self.comp[v]
    }

    /// Mirrors a double-edge swap `{a,b},{c,d} → {a,c},{b,d}`.
    ///
    /// See the type docs for preconditions.
    pub fn apply_swap(&mut self, a: NodeId, b: NodeId, c: NodeId, d: NodeId) {
        if self.cycle_rep {
            self.ring_apply_swap(a, b, c, d);
            return;
        }
        self.delete_edge(a, b);
        self.delete_edge(c, d);
        self.insert_edge(a, c);
        self.insert_edge(b, d);
    }

    /// Rolls back a previously applied swap: removes `{a,c},{b,d}` and
    /// restores `{a,b},{c,d}` (the slot-level inverse used by
    /// [`TopologyEvent::inverted`]).
    ///
    /// Undo restores semantic state — the exact component partition
    /// and a valid spanning forest — not bit-identical internals:
    /// level promotions performed while the swap was live persist,
    /// keeping the global amortisation monotone.
    pub fn undo_swap(&mut self, a: NodeId, b: NodeId, c: NodeId, d: NodeId) {
        self.apply_swap(a, c, b, d);
    }

    /// Whether the swap `{a,b},{c,d} → {a,c},{b,d}` would increase the
    /// number of components, by applying it and rolling it back.
    ///
    /// Amortised near-`O(d)`; the candidate must satisfy the swap
    /// preconditions (in particular simplicity) against the tracked
    /// edge set.
    pub fn would_disconnect(&mut self, a: NodeId, b: NodeId, c: NodeId, d: NodeId) -> bool {
        if self.cycle_rep {
            return self.ring_delta(a, b, c, d) > 0;
        }
        let before = self.components;
        self.apply_swap(a, b, c, d);
        let disconnects = self.components > before;
        self.undo_swap(a, b, c, d);
        disconnects
    }

    /// Whether the graph would be disconnected (more than one
    /// component) *after* the swap `{a,b},{c,d} → {a,c},{b,d}` —
    /// exactly the accept/reject test of the connectivity-checked
    /// generators (post-swap `!is_connected`), which differs from
    /// [`DynamicConnectivity::would_disconnect`] only on graphs that
    /// are already disconnected: a merge there can still leave several
    /// components, and a split of a side ring never *increases* the
    /// answer past "disconnected".
    ///
    /// `O(1)` on the 2-regular ring representation; apply-and-roll-back
    /// (amortised near-`O(d)`) on the spanning forest.
    pub fn would_leave_disconnected(&mut self, a: NodeId, b: NodeId, c: NodeId, d: NodeId) -> bool {
        if self.cycle_rep {
            let after = self.components as isize + self.ring_delta(a, b, c, d);
            return after != 1;
        }
        self.apply_swap(a, b, c, d);
        let disconnected = self.components != 1;
        self.undo_swap(a, b, c, d);
        disconnected
    }

    /// Mirrors one applied [`TopologyEvent`]. Port permutations and
    /// sleep/wake do not change the edge set and are no-ops.
    pub fn apply_event(&mut self, event: &TopologyEvent) {
        if let TopologyEvent::Swap { a, b, c, d } = *event {
            self.apply_swap(a, b, c, d);
        }
    }

    /// Mirrors the rollback of one applied [`TopologyEvent`].
    pub fn undo_event(&mut self, event: &TopologyEvent) {
        self.apply_event(&event.inverted());
    }

    #[inline]
    fn push_slot(&mut self, u: usize, to: u32, level: u8, tree: bool) {
        let l = self.len[u] as usize;
        debug_assert!(l < self.cap, "slot overflow at node {u}");
        self.slots[u * self.cap + l] = Slot { to, level, tree };
        self.len[u] += 1;
    }

    /// Removes the directed slot `u → v` (swap-remove) and returns it.
    #[inline]
    fn remove_slot(&mut self, u: usize, v: u32) -> Slot {
        let base = u * self.cap;
        let l = self.len[u] as usize;
        for i in 0..l {
            if self.slots[base + i].to == v {
                let slot = self.slots[base + i];
                self.slots[base + i] = self.slots[base + l - 1];
                self.len[u] -= 1;
                return slot;
            }
        }
        panic!("edge {u}->{v} not tracked");
    }

    /// Updates the level of the directed slot `u → v` (which must
    /// exist).
    #[inline]
    fn set_slot_level(&mut self, u: usize, v: u32, level: u8) {
        let base = u * self.cap;
        for i in 0..self.len[u] as usize {
            if self.slots[base + i].to == v {
                self.slots[base + i].level = level;
                return;
            }
        }
        panic!("edge {u}->{v} not tracked");
    }

    /// Promotes the directed slot `u → v` to a tree edge at `level`.
    #[inline]
    fn make_tree(&mut self, u: usize, v: u32, level: u8) {
        let base = u * self.cap;
        for i in 0..self.len[u] as usize {
            if self.slots[base + i].to == v {
                self.slots[base + i].level = level;
                self.slots[base + i].tree = true;
                return;
            }
        }
        panic!("edge {u}->{v} not tracked");
    }

    fn alloc_label(&mut self) -> u32 {
        if let Some(label) = self.free_labels.pop() {
            label
        } else {
            self.comp_size.push(0);
            (self.comp_size.len() - 1) as u32
        }
    }

    fn insert_edge(&mut self, u: NodeId, v: NodeId) {
        let (cu, cv) = (self.comp[u], self.comp[v]);
        if cu == cv {
            // Same component: a non-tree edge at level 0.
            self.push_slot(u, v as u32, 0, false);
            self.push_slot(v, u as u32, 0, false);
            return;
        }
        // Tree edge joining two components: relabel the smaller one
        // (union by size), then link.
        let (keep, absorbed, absorbed_root) =
            if self.comp_size[cu as usize] >= self.comp_size[cv as usize] {
                (cu, cv, v)
            } else {
                (cv, cu, u)
            };
        let mut queue = std::mem::take(&mut self.qa);
        queue.clear();
        queue.push(absorbed_root as u32);
        self.comp[absorbed_root] = keep;
        let mut head = 0usize;
        while head < queue.len() {
            let x = queue[head] as usize;
            head += 1;
            let base = x * self.cap;
            for i in 0..self.len[x] as usize {
                let slot = self.slots[base + i];
                if slot.tree && self.comp[slot.to as usize] != keep {
                    self.comp[slot.to as usize] = keep;
                    queue.push(slot.to);
                }
            }
        }
        self.qa = queue;
        self.comp_size[keep as usize] += self.comp_size[absorbed as usize];
        self.free_labels.push(absorbed);
        self.components -= 1;
        self.push_slot(u, v as u32, 0, true);
        self.push_slot(v, u as u32, 0, true);
    }

    fn delete_edge(&mut self, u: NodeId, v: NodeId) {
        let slot = self.remove_slot(u, v as u32);
        let back = self.remove_slot(v, u as u32);
        debug_assert_eq!(slot.tree, back.tree, "asymmetric tree flag");
        if slot.tree {
            self.replace_or_split(u, v, slot.level);
        }
    }

    /// The HDT replacement search after deleting the tree edge
    /// `{u, v}` of level `lvl`: descends level by level, each time
    /// walking the smaller side of the split in lockstep, promoting
    /// its level-`i` edges, and rewiring the first crossing non-tree
    /// edge found into the forest. If no level yields a replacement
    /// the component splits in two.
    // Index loops: `side` borrows a queue moved out of `self`, and the
    // scan bodies mutate `self` (and re-seat the queues on early
    // return), so iterator forms would fight the borrow checker.
    #[allow(clippy::needless_range_loop)]
    fn replace_or_split(&mut self, u: NodeId, v: NodeId, lvl: u8) {
        let mut qa = std::mem::take(&mut self.qa);
        let mut qb = std::mem::take(&mut self.qb);
        for i in (0..=lvl).rev() {
            // Fresh pair of visit tags (wrap-safe).
            if self.epoch >= u32::MAX - 2 {
                self.mark.fill(0);
                self.epoch = 0;
            }
            let tag_a = self.epoch + 1;
            let tag_b = self.epoch + 2;
            self.epoch += 2;

            // Lockstep BFS over tree edges of level ≥ i from both
            // endpoints; the first side to exhaust is (approximately)
            // the smaller one and is fully enumerated in its queue.
            qa.clear();
            qb.clear();
            qa.push(u as u32);
            self.mark[u] = tag_a;
            qb.push(v as u32);
            self.mark[v] = tag_b;
            let (mut ia, mut ib) = (0usize, 0usize);
            let a_side = loop {
                if ia == qa.len() {
                    break true;
                }
                let x = qa[ia] as usize;
                ia += 1;
                let base = x * self.cap;
                for s in 0..self.len[x] as usize {
                    let slot = self.slots[base + s];
                    if slot.tree && slot.level >= i && self.mark[slot.to as usize] != tag_a {
                        self.mark[slot.to as usize] = tag_a;
                        qa.push(slot.to);
                    }
                }
                if ib == qb.len() {
                    break false;
                }
                let y = qb[ib] as usize;
                ib += 1;
                let base = y * self.cap;
                for s in 0..self.len[y] as usize {
                    let slot = self.slots[base + s];
                    if slot.tree && slot.level >= i && self.mark[slot.to as usize] != tag_b {
                        self.mark[slot.to as usize] = tag_b;
                        qb.push(slot.to);
                    }
                }
            };
            let (side, tag) = if a_side { (&qa, tag_a) } else { (&qb, tag_b) };

            // Promote the smaller side's level-i tree edges to i+1
            // (both endpoints are inside the side, so each edge is
            // seen at level i exactly once).
            if i < self.max_level {
                for si in 0..side.len() {
                    let x = side[si] as usize;
                    let base = x * self.cap;
                    for s in 0..self.len[x] as usize {
                        let slot = self.slots[base + s];
                        if slot.tree && slot.level == i {
                            self.slots[base + s].level = i + 1;
                            self.set_slot_level(slot.to as usize, x as u32, i + 1);
                        }
                    }
                }
            }

            // Scan the side's level-i non-tree edges: a crossing edge
            // is the replacement (re-linked at level i); a same-side
            // edge is promoted, paying for the walk.
            for si in 0..side.len() {
                let x = side[si] as usize;
                let base = x * self.cap;
                let mut s = 0usize;
                while s < self.len[x] as usize {
                    let slot = self.slots[base + s];
                    if !slot.tree && slot.level == i {
                        let y = slot.to as usize;
                        if self.mark[y] != tag {
                            // Crossing edge: splice it into the forest
                            // at level i and we are reconnected.
                            self.make_tree(x, slot.to, i);
                            self.make_tree(y, x as u32, i);
                            self.qa = qa;
                            self.qb = qb;
                            return;
                        }
                        if i < self.max_level {
                            self.slots[base + s].level = i + 1;
                            self.set_slot_level(y, x as u32, i + 1);
                        }
                    }
                    s += 1;
                }
            }
        }

        // No replacement at any level: the deletion splits the
        // component. The level-0 walk fully enumerated the smaller
        // side — give it a fresh label. The exhausted queue is the
        // shorter one (the lockstep expands both sides node for node,
        // so the surviving side's queue is never shorter than a fully
        // enumerated one; on a tie both are complete).
        let side = if qa.len() <= qb.len() { &qa } else { &qb };
        let old = self.comp[side[0] as usize];
        let fresh = self.alloc_label();
        for &x in side.iter() {
            self.comp[x as usize] = fresh;
        }
        self.comp_size[fresh as usize] = side.len() as u32;
        self.comp_size[old as usize] -= side.len() as u32;
        self.components += 1;
        self.qa = qa;
        self.qb = qb;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generators, traversal};

    /// Exhaustive swap candidates on a small graph, checked against
    /// the BFS oracle through apply / query / undo.
    fn check_all_swaps(g: &RegularGraph) {
        let mut dc = DynamicConnectivity::new(g);
        check_all_swaps_with(g, &mut dc);
    }

    fn check_all_swaps_with(g: &RegularGraph, dc: &mut DynamicConnectivity) {
        assert_eq!(dc.is_connected(), traversal::is_connected(g));
        let n = g.num_nodes();
        let d = g.degree();
        let mut probe = g.clone();
        for a in 0..n {
            for pa in 0..d {
                let b = g.neighbor(a, pa);
                for c in 0..n {
                    for pc in 0..d {
                        let dd = g.neighbor(c, pc);
                        let simple = a != c
                            && a != dd
                            && b != c
                            && b != dd
                            && !g.has_edge(a, c)
                            && !g.has_edge(b, dd);
                        if !simple {
                            continue;
                        }
                        probe.apply_swap(a, b, c, dd).unwrap();
                        let oracle = !traversal::is_connected(&probe);
                        assert_eq!(
                            dc.would_disconnect(a, b, c, dd),
                            oracle,
                            "swap ({a},{b})x({c},{dd})"
                        );
                        // On a connected graph the generators' accept
                        // test coincides with the split test.
                        assert_eq!(
                            dc.would_leave_disconnected(a, b, c, dd),
                            oracle,
                            "leave-disconnected ({a},{b})x({c},{dd})"
                        );
                        // Apply and roll back for real (the ring
                        // representation answers probes without
                        // mutating, so this is what exercises its
                        // merge / 2-opt / split pointer surgery).
                        dc.apply_swap(a, b, c, dd);
                        assert_eq!(dc.is_connected(), !oracle, "applied ({a},{b})x({c},{dd})");
                        dc.undo_swap(a, b, c, dd);
                        probe.apply_swap(a, c, b, dd).unwrap();
                        assert_eq!(dc.is_connected(), traversal::is_connected(&probe));
                    }
                }
            }
        }
    }

    #[test]
    fn matches_bfs_oracle_on_cycle() {
        // d == 2: exercises the ring representation exhaustively.
        check_all_swaps(&generators::cycle(12).unwrap());
    }

    #[test]
    fn forest_rep_matches_bfs_oracle_on_cycle() {
        // Force the general-degree spanning forest onto a 2-regular
        // graph so the HDT path keeps its degenerate-cycle coverage.
        let g = generators::cycle(12).unwrap();
        let mut dc = DynamicConnectivity::new(&g);
        dc.rebuild_forest(&g);
        assert!(!dc.cycle_rep);
        check_all_swaps_with(&g, &mut dc);
    }

    #[test]
    fn matches_bfs_oracle_on_torus() {
        check_all_swaps(&generators::torus(2, 4).unwrap());
    }

    #[test]
    fn matches_bfs_oracle_on_clique_circulant() {
        check_all_swaps(&generators::clique_circulant(14, 4).unwrap());
    }

    #[test]
    fn tracks_splits_and_rejoins_across_applied_swaps() {
        // Swapping two "parallel" cycle edges splits it into two
        // cycles; the inverse swap rejoins them.
        let g = generators::cycle(16).unwrap();
        let mut dc = DynamicConnectivity::new(&g);
        assert!(dc.is_connected());
        assert_eq!(dc.num_components(), 1);
        // Edges {0,1} and {9,8}: adding 0-9 / 1-8 closes each arc on
        // itself and splits the cycle in two.
        dc.apply_swap(0, 1, 9, 8);
        assert!(!dc.is_connected());
        assert_eq!(dc.num_components(), 2);
        assert!(dc.same_component(0, 9));
        assert!(!dc.same_component(0, 1));
        dc.undo_swap(0, 1, 9, 8);
        assert!(dc.is_connected());
        assert!(dc.same_component(0, 1));
    }

    #[test]
    fn rebuild_reanchors_to_a_new_snapshot() {
        let g1 = generators::cycle(10).unwrap();
        let mut g2 = generators::cycle(10).unwrap();
        // Disconnect g2 into two 5-cycles.
        g2.apply_swap(0, 1, 6, 5).unwrap();
        let mut dc = DynamicConnectivity::new(&g1);
        assert!(dc.is_connected());
        dc.rebuild(&g2);
        assert!(!dc.is_connected());
        assert_eq!(dc.num_components(), 2);
        dc.rebuild(&g1);
        assert!(dc.is_connected());
    }

    #[test]
    fn sleep_wake_and_port_events_are_noops() {
        let g = generators::torus(2, 3).unwrap();
        let mut dc = DynamicConnectivity::new(&g);
        dc.apply_event(&TopologyEvent::Sleep { node: 3 });
        dc.apply_event(&TopologyEvent::Wake { node: 3 });
        dc.apply_event(&TopologyEvent::PermutePorts {
            node: 1,
            perm: vec![1, 0, 3, 2],
        });
        assert!(dc.is_connected());
        assert_eq!(dc.num_components(), 1);
    }

    #[test]
    fn long_apply_undo_sequence_stays_coherent() {
        // A deterministic churn tape on a hypercube: apply a swap,
        // sometimes undo it, always compare against the BFS oracle.
        let mut g = generators::hypercube(5).unwrap();
        let mut dc = DynamicConnectivity::new(&g);
        let n = g.num_nodes();
        let d = g.degree();
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut step = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        let mut applied = 0;
        let mut attempts = 0;
        while applied < 200 && attempts < 40_000 {
            attempts += 1;
            let a = step() % n;
            let b = g.neighbor(a, step() % d);
            let c = step() % n;
            let dd = g.neighbor(c, step() % d);
            let simple =
                a != c && a != dd && b != c && b != dd && !g.has_edge(a, c) && !g.has_edge(b, dd);
            if !simple {
                continue;
            }
            dc.apply_swap(a, b, c, dd);
            g.apply_swap(a, b, c, dd).unwrap();
            assert_eq!(dc.is_connected(), traversal::is_connected(&g));
            if step() % 3 == 0 {
                dc.undo_swap(a, b, c, dd);
                g.apply_swap(a, c, b, dd).unwrap();
                assert_eq!(dc.is_connected(), traversal::is_connected(&g));
            }
            applied += 1;
        }
        assert!(applied >= 200, "tape too short: {applied}");
    }
}
