use crate::{GraphError, NodeId, RegularGraph};

/// Classification of a port of the balancing graph `G⁺`.
///
/// The paper splits each node's `d⁺ = d + d°` edges into `d` *original
/// edges* (`E_u`) and `d°` *self-loops* (`E°_u`); cumulative fairness is
/// demanded on original edges, while self-preference (Definition 3.1)
/// concerns self-loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortKind {
    /// Port into an original edge; payload is the original port number
    /// `0 ≤ p < d`.
    Original(usize),
    /// Port into a self-loop; payload is the self-loop index
    /// `0 ≤ i < d°`.
    SelfLoop(usize),
}

/// The balancing graph `G⁺ = (V, E ∪ E°)`: the original d-regular graph
/// with `d°` self-loops attached to every node (§1.3).
///
/// Each node has `d⁺ = d + d°` **ports**: ports `0..d` address the
/// original edges (numbered as in the underlying [`RegularGraph`]) and
/// ports `d..d⁺` address the self-loops. All balancers and the
/// simulation engine speak in ports, which keeps token routing free of
/// global edge identifiers — matching the paper's anonymous-network
/// model.
///
/// # Example
///
/// ```
/// use dlb_graph::{generators, BalancingGraph, PortKind};
///
/// let g = generators::cycle(8)?;
/// let gp = BalancingGraph::lazy(g); // d° = d, the paper's main regime
/// assert_eq!(gp.degree_plus(), 4);
/// assert_eq!(gp.port_kind(1), PortKind::Original(1));
/// assert_eq!(gp.port_kind(3), PortKind::SelfLoop(1));
/// assert_eq!(gp.port_target(5, 0), 6); // original edge
/// assert_eq!(gp.port_target(5, 3), 5); // self-loop stays home
/// # Ok::<(), dlb_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BalancingGraph {
    graph: RegularGraph,
    num_self_loops: usize,
}

impl BalancingGraph {
    /// Attaches `d°` self-loops to every node of `graph`.
    ///
    /// `d° = 0` is allowed (needed by the Theorem 4.3 lower bound, which
    /// runs the rotor-router on `G⁺ = G`), and so is any `d° > d` (the
    /// SEND([x/d⁺]) good-balancer regime wants `d⁺ > 2d`).
    ///
    /// # Errors
    ///
    /// Returns an error if `d⁺ = d + d°` would overflow the port index
    /// space (`u16`).
    pub fn with_self_loops(graph: RegularGraph, num_self_loops: usize) -> Result<Self, GraphError> {
        let d_plus = graph.degree() + num_self_loops;
        if d_plus > u16::MAX as usize {
            return Err(GraphError::InvalidParameters {
                reason: format!("d+ = {d_plus} exceeds the port index space"),
            });
        }
        Ok(BalancingGraph {
            graph,
            num_self_loops,
        })
    }

    /// The paper's main regime: `d° = d`, i.e. half of all edges are
    /// self-loops (`d⁺ = 2d`), as required by claims (i)–(ii) of
    /// Theorem 2.3.
    pub fn lazy(graph: RegularGraph) -> Self {
        let d = graph.degree();
        BalancingGraph::with_self_loops(graph, d).expect("d+ = 2d always fits in a u16 port space")
    }

    /// The bare graph with no self-loops (`G⁺ = G`), the setting of the
    /// Theorem 4.3 lower bound.
    pub fn bare(graph: RegularGraph) -> Self {
        BalancingGraph::with_self_loops(graph, 0).expect("d+ = d always fits in a u16 port space")
    }

    /// The underlying original graph `G`.
    #[inline]
    pub fn graph(&self) -> &RegularGraph {
        &self.graph
    }

    /// Mutable access to the underlying graph, for the in-place
    /// topology mutations of [`crate::mutate`]. Every mutation method
    /// re-establishes the structural invariants itself, so `G⁺` stays
    /// valid; the self-loop count is untouched by churn.
    #[inline]
    pub fn graph_mut(&mut self) -> &mut RegularGraph {
        &mut self.graph
    }

    /// Number of nodes `n`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    /// Original degree `d`.
    #[inline]
    pub fn degree(&self) -> usize {
        self.graph.degree()
    }

    /// Number of self-loops per node, `d°`.
    #[inline]
    pub fn num_self_loops(&self) -> usize {
        self.num_self_loops
    }

    /// Total degree `d⁺ = d + d°` of every node in `G⁺`.
    #[inline]
    pub fn degree_plus(&self) -> usize {
        self.graph.degree() + self.num_self_loops
    }

    /// Classifies port `p` of any node.
    ///
    /// # Panics
    ///
    /// Panics if `p >= self.degree_plus()`.
    #[inline]
    pub fn port_kind(&self, p: usize) -> PortKind {
        let d = self.graph.degree();
        assert!(p < self.degree_plus(), "port {p} out of range");
        if p < d {
            PortKind::Original(p)
        } else {
            PortKind::SelfLoop(p - d)
        }
    }

    /// The node reached by sending a token from `u` through port `p`
    /// (self-loop ports return `u` itself).
    ///
    /// # Panics
    ///
    /// Panics if `u` or `p` is out of range.
    #[inline]
    pub fn port_target(&self, u: NodeId, p: usize) -> NodeId {
        let d = self.graph.degree();
        if p < d {
            self.graph.neighbor(u, p)
        } else {
            assert!(p < self.degree_plus(), "port {p} out of range");
            u
        }
    }

    /// Whether port `p` is a self-loop port.
    #[inline]
    pub fn is_self_loop(&self, p: usize) -> bool {
        p >= self.graph.degree()
    }
}

/// A per-node cyclic ordering of the `d⁺` ports, consumed by rotor-router
/// balancers.
///
/// The rotor-router model assumes "the edges of the nodes are cyclically
/// ordered" (§1.2); the *choice* of that order is an adversary/designer
/// knob. Theorem 4.3's lower bound explicitly constructs a bad order, so
/// the order is a first-class value here rather than a hidden default.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PortOrder {
    /// Ports in index order: all original edges first (`0..d`), then the
    /// self-loops (`d..d⁺`).
    Sequential,
    /// Original edges and self-loops interleaved as evenly as possible,
    /// starting with an original edge. With `d° = d` this alternates
    /// strictly: original, loop, original, loop, …
    Interleaved,
    /// An explicit permutation of `0..d⁺` used for every node.
    Uniform(Vec<u16>),
    /// An explicit permutation of `0..d⁺` per node (outer index = node).
    PerNode(Vec<Vec<u16>>),
    /// An independent pseudo-random permutation per node, derived
    /// deterministically from the seed and the node index (a
    /// Fisher–Yates shuffle driven by splitmix64). Used by the
    /// port-order sensitivity ablation: rotor-router guarantees are
    /// order-independent, and this order exercises that claim.
    Shuffled {
        /// Seed; the same seed always yields the same orders.
        seed: u64,
    },
}

impl PortOrder {
    /// Materialises the cyclic port sequence for node `u`.
    ///
    /// # Errors
    ///
    /// Returns an error if an explicit order is not a permutation of
    /// `0..d⁺` or (for [`PortOrder::PerNode`]) is missing node `u`.
    pub fn sequence_for(&self, gp: &BalancingGraph, u: NodeId) -> Result<Vec<u16>, GraphError> {
        let d = gp.degree();
        let d_plus = gp.degree_plus();
        let seq = match self {
            PortOrder::Sequential => (0..d_plus as u16).collect(),
            PortOrder::Interleaved => {
                // Bresenham-style merge of the two port classes so they
                // appear at proportional positions; ties favour original
                // edges, so the sequence starts with port 0.
                let mut seq = Vec::with_capacity(d_plus);
                let d_self = gp.num_self_loops();
                let (mut orig, mut lp) = (0usize, 0usize);
                while orig < d || lp < d_self {
                    let take_original = orig < d && (lp >= d_self || orig * d_self <= lp * d);
                    if take_original {
                        seq.push(orig as u16);
                        orig += 1;
                    } else {
                        seq.push((d + lp) as u16);
                        lp += 1;
                    }
                }
                seq
            }
            PortOrder::Uniform(seq) => seq.clone(),
            PortOrder::PerNode(orders) => {
                orders.get(u).cloned().ok_or(GraphError::NodeOutOfRange {
                    node: u,
                    n: orders.len(),
                })?
            }
            PortOrder::Shuffled { seed } => {
                let mut seq: Vec<u16> = (0..d_plus as u16).collect();
                // Fisher–Yates driven by a splitmix64 stream keyed on
                // (seed, node), so orders are independent across nodes
                // but fully reproducible.
                let mut state = seed ^ (u as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                let mut next = || {
                    state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
                    let mut z = state;
                    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                    z ^ (z >> 31)
                };
                for i in (1..seq.len()).rev() {
                    let j = (next() % (i as u64 + 1)) as usize;
                    seq.swap(i, j);
                }
                seq
            }
        };
        validate_permutation(&seq, d_plus)?;
        Ok(seq)
    }
}

fn validate_permutation(seq: &[u16], d_plus: usize) -> Result<(), GraphError> {
    if seq.len() != d_plus {
        return Err(GraphError::InvalidParameters {
            reason: format!(
                "port order has {} entries, expected d+ = {d_plus}",
                seq.len()
            ),
        });
    }
    let mut seen = vec![false; d_plus];
    for &p in seq {
        let p = p as usize;
        if p >= d_plus || seen[p] {
            return Err(GraphError::InvalidParameters {
                reason: format!("port order is not a permutation of 0..{d_plus}"),
            });
        }
        seen[p] = true;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn lazy_cycle(n: usize) -> BalancingGraph {
        BalancingGraph::lazy(generators::cycle(n).unwrap())
    }

    #[test]
    fn lazy_doubles_degree() {
        let gp = lazy_cycle(6);
        assert_eq!(gp.degree(), 2);
        assert_eq!(gp.num_self_loops(), 2);
        assert_eq!(gp.degree_plus(), 4);
    }

    #[test]
    fn bare_has_no_self_loops() {
        let gp = BalancingGraph::bare(generators::cycle(6).unwrap());
        assert_eq!(gp.degree_plus(), 2);
        assert_eq!(gp.num_self_loops(), 0);
    }

    #[test]
    fn port_kinds_split_at_d() {
        let gp = lazy_cycle(6);
        assert_eq!(gp.port_kind(0), PortKind::Original(0));
        assert_eq!(gp.port_kind(1), PortKind::Original(1));
        assert_eq!(gp.port_kind(2), PortKind::SelfLoop(0));
        assert_eq!(gp.port_kind(3), PortKind::SelfLoop(1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn port_kind_rejects_overflow() {
        let gp = lazy_cycle(6);
        let _ = gp.port_kind(4);
    }

    #[test]
    fn port_targets_route_correctly() {
        let gp = lazy_cycle(6);
        assert_eq!(gp.port_target(2, 0), 3);
        assert_eq!(gp.port_target(2, 1), 1);
        assert_eq!(gp.port_target(2, 2), 2);
        assert_eq!(gp.port_target(2, 3), 2);
        assert!(gp.is_self_loop(2));
        assert!(!gp.is_self_loop(1));
    }

    #[test]
    fn sequential_order_is_identity() {
        let gp = lazy_cycle(6);
        let seq = PortOrder::Sequential.sequence_for(&gp, 0).unwrap();
        assert_eq!(seq, vec![0, 1, 2, 3]);
    }

    #[test]
    fn interleaved_order_alternates_for_lazy_graphs() {
        let gp = lazy_cycle(6);
        let seq = PortOrder::Interleaved.sequence_for(&gp, 0).unwrap();
        // d = d° = 2: strict alternation original/self-loop.
        let kinds: Vec<bool> = seq.iter().map(|&p| gp.is_self_loop(p as usize)).collect();
        assert_eq!(kinds, vec![false, true, false, true]);
    }

    #[test]
    fn interleaved_order_is_permutation_for_uneven_mix() {
        let g = generators::cycle(8).unwrap();
        for d_self in [0usize, 1, 3, 5] {
            let gp = BalancingGraph::with_self_loops(g.clone(), d_self).unwrap();
            let seq = PortOrder::Interleaved.sequence_for(&gp, 0).unwrap();
            let mut sorted = seq.clone();
            sorted.sort_unstable();
            let expect: Vec<u16> = (0..gp.degree_plus() as u16).collect();
            assert_eq!(sorted, expect, "d_self = {d_self}");
        }
    }

    #[test]
    fn uniform_order_validated() {
        let gp = lazy_cycle(6);
        assert!(PortOrder::Uniform(vec![3, 2, 1, 0])
            .sequence_for(&gp, 0)
            .is_ok());
        assert!(PortOrder::Uniform(vec![0, 1, 2])
            .sequence_for(&gp, 0)
            .is_err());
        assert!(PortOrder::Uniform(vec![0, 1, 2, 2])
            .sequence_for(&gp, 0)
            .is_err());
        assert!(PortOrder::Uniform(vec![0, 1, 2, 9])
            .sequence_for(&gp, 0)
            .is_err());
    }

    #[test]
    fn per_node_order_selects_by_node() {
        let gp = lazy_cycle(3);
        let order = PortOrder::PerNode(vec![vec![0, 1, 2, 3], vec![3, 2, 1, 0], vec![1, 0, 3, 2]]);
        assert_eq!(order.sequence_for(&gp, 1).unwrap(), vec![3, 2, 1, 0]);
        assert!(order.sequence_for(&gp, 5).is_err());
    }

    #[test]
    fn with_self_loops_allows_large_laziness() {
        let g = generators::cycle(6).unwrap();
        let gp = BalancingGraph::with_self_loops(g, 6).unwrap();
        assert_eq!(gp.degree_plus(), 8);
    }

    #[test]
    fn shuffled_order_is_a_reproducible_permutation() {
        let gp = lazy_cycle(8);
        let order = PortOrder::Shuffled { seed: 42 };
        for u in 0..8 {
            let seq = order.sequence_for(&gp, u).unwrap();
            let mut sorted = seq.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3], "node {u} not a permutation");
            assert_eq!(
                seq,
                order.sequence_for(&gp, u).unwrap(),
                "node {u} not reproducible"
            );
        }
    }

    #[test]
    fn shuffled_orders_differ_across_nodes_and_seeds() {
        let gp = BalancingGraph::lazy(generators::cycle(16).unwrap());
        let a = PortOrder::Shuffled { seed: 1 };
        let b = PortOrder::Shuffled { seed: 2 };
        let all_a: Vec<Vec<u16>> = (0..16).map(|u| a.sequence_for(&gp, u).unwrap()).collect();
        let all_b: Vec<Vec<u16>> = (0..16).map(|u| b.sequence_for(&gp, u).unwrap()).collect();
        assert_ne!(all_a, all_b, "different seeds must differ somewhere");
        // With 16 nodes and 4! = 24 orders, at least two nodes must
        // have received different permutations under the same seed.
        assert!(
            all_a.windows(2).any(|w| w[0] != w[1]),
            "per-node orders should not all coincide"
        );
    }
}
