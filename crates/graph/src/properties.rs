//! Structural graph properties: bipartiteness and odd girth.
//!
//! Theorem 4.3 bounds the rotor-router's discrepancy on non-bipartite
//! graphs without self-loops by `Ω(d·φ(G))`, where `2φ(G) + 1` is the
//! **odd girth** — the length of the shortest odd cycle. These checks
//! are exact (BFS per node, `O(n·m)`), sized for the experiment graphs.

use std::collections::VecDeque;

use crate::{NodeId, RegularGraph};

/// Whether the graph is bipartite (contains no odd cycle).
///
/// Bipartite graphs have no odd girth; the Theorem 4.3 construction
/// requires non-bipartite input.
pub fn is_bipartite(graph: &RegularGraph) -> bool {
    let n = graph.num_nodes();
    let mut color = vec![u8::MAX; n];
    for start in 0..n {
        if color[start] != u8::MAX {
            continue;
        }
        color[start] = 0;
        let mut queue = VecDeque::from([start]);
        while let Some(u) = queue.pop_front() {
            for &v in graph.neighbors(u) {
                let v = v as usize;
                if color[v] == u8::MAX {
                    color[v] = 1 - color[u];
                    queue.push_back(v);
                } else if color[v] == color[u] {
                    return false;
                }
            }
        }
    }
    true
}

/// The odd girth: the length of the shortest odd-length cycle, or `None`
/// if the graph is bipartite.
///
/// Computed by BFS from every node: an edge `{u, v}` with
/// `dist(s, u) == dist(s, v)` closes an odd cycle of length
/// `dist(s,u) + dist(s,v) + 1` through `s`; minimising over all sources
/// and edges yields the exact odd girth.
pub fn odd_girth(graph: &RegularGraph) -> Option<u32> {
    let n = graph.num_nodes();
    let mut best: Option<u32> = None;
    for s in 0..n {
        let dist = bfs_levels(graph, s);
        for u in 0..n {
            let du = dist[u];
            if du == u32::MAX {
                continue;
            }
            for &v in graph.neighbors(u) {
                let v = v as usize;
                if u < v && dist[v] == du {
                    let cycle_len = 2 * du + 1;
                    best = Some(best.map_or(cycle_len, |b| b.min(cycle_len)));
                }
            }
        }
    }
    best
}

/// The paper's `φ(G)`, defined through `2φ(G) + 1 =` odd girth; `None`
/// for bipartite graphs.
///
/// Theorem 4.3: the rotor-router without self-loops can be stuck at
/// discrepancy `Ω(d·φ(G))`.
pub fn odd_girth_radius(graph: &RegularGraph) -> Option<u32> {
    odd_girth(graph).map(|g| (g - 1) / 2)
}

fn bfs_levels(graph: &RegularGraph, source: NodeId) -> Vec<u32> {
    let mut dist = vec![u32::MAX; graph.num_nodes()];
    let mut queue = VecDeque::new();
    dist[source] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        for &v in graph.neighbors(u) {
            let v = v as usize;
            if dist[v] == u32::MAX {
                dist[v] = dist[u] + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Summary of a graph's structural properties, as printed by experiment
/// reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphProperties {
    /// Number of nodes.
    pub n: usize,
    /// Regular degree.
    pub d: usize,
    /// Exact diameter (`None` when disconnected).
    pub diameter: Option<u32>,
    /// Whether the graph is bipartite.
    pub bipartite: bool,
    /// Odd girth (`None` when bipartite).
    pub odd_girth: Option<u32>,
}

/// Computes the full [`GraphProperties`] summary (exact, `O(n·m)`).
pub fn summarize(graph: &RegularGraph) -> GraphProperties {
    GraphProperties {
        n: graph.num_nodes(),
        d: graph.degree(),
        diameter: crate::traversal::diameter(graph),
        bipartite: is_bipartite(graph),
        odd_girth: odd_girth(graph),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn even_cycles_are_bipartite() {
        assert!(is_bipartite(&generators::cycle(8).unwrap()));
        assert_eq!(odd_girth(&generators::cycle(8).unwrap()), None);
    }

    #[test]
    fn odd_cycles_have_odd_girth_n() {
        for n in [3usize, 5, 9, 15] {
            let g = generators::cycle(n).unwrap();
            assert!(!is_bipartite(&g));
            assert_eq!(odd_girth(&g), Some(n as u32), "n = {n}");
            assert_eq!(odd_girth_radius(&g), Some(((n - 1) / 2) as u32));
        }
    }

    #[test]
    fn hypercube_is_bipartite() {
        assert!(is_bipartite(&generators::hypercube(4).unwrap()));
    }

    #[test]
    fn complete_graph_odd_girth_is_three() {
        let g = generators::complete(5).unwrap();
        assert_eq!(odd_girth(&g), Some(3));
        assert_eq!(odd_girth_radius(&g), Some(1));
    }

    #[test]
    fn petersen_odd_girth_is_five() {
        assert_eq!(odd_girth(&generators::petersen()), Some(5));
        assert_eq!(odd_girth_radius(&generators::petersen()), Some(2));
    }

    #[test]
    fn complete_bipartite_is_bipartite() {
        assert!(is_bipartite(&generators::complete_bipartite(4).unwrap()));
    }

    #[test]
    fn chorded_cycle_odd_girth() {
        // C_9 with offset-3 chords: triangle 0-3-6? 0~3, 3~6, 6~0 via
        // offset 3: yes — odd girth 3.
        let g = generators::chorded_cycle(9, 3).unwrap();
        assert_eq!(odd_girth(&g), Some(3));
    }

    #[test]
    fn summarize_reports_consistent_fields() {
        let g = generators::cycle(7).unwrap();
        let p = summarize(&g);
        assert_eq!(p.n, 7);
        assert_eq!(p.d, 2);
        assert_eq!(p.diameter, Some(3));
        assert!(!p.bipartite);
        assert_eq!(p.odd_girth, Some(7));
    }
}
