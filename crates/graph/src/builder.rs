use crate::{GraphError, NodeId, RegularGraph};

/// Incremental builder for [`RegularGraph`] values.
///
/// Generators and tests add undirected edges one at a time; the terminal
/// [`build`](GraphBuilder::build) method checks d-regularity and hands the
/// result to [`RegularGraph::from_adjacency`] for full validation.
///
/// Port numbering follows insertion order: the i-th edge added at node `u`
/// becomes `u`'s original port `i`. This determinism matters for the
/// rotor-router experiments, where port order is part of the adversary's
/// power (Theorem 4.3).
///
/// # Example
///
/// ```
/// use dlb_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(4, 2);
/// for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 0)] {
///     b.add_edge(u, v)?;
/// }
/// let g = b.build()?;
/// assert_eq!(g.degree(), 2);
/// # Ok::<(), dlb_graph::GraphError>(())
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    n: usize,
    d: usize,
    adjacency: Vec<Vec<u32>>,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `n` nodes of target degree `d`.
    pub fn new(n: usize, d: usize) -> Self {
        GraphBuilder {
            n,
            d,
            adjacency: vec![Vec::with_capacity(d); n],
        }
    }

    /// Adds the undirected edge `{u, v}`.
    ///
    /// # Errors
    ///
    /// Returns an error if an endpoint is out of range, `u == v`, the edge
    /// already exists, or either endpoint already has `d` edges.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> Result<(), GraphError> {
        if u >= self.n {
            return Err(GraphError::NodeOutOfRange { node: u, n: self.n });
        }
        if v >= self.n {
            return Err(GraphError::NodeOutOfRange { node: v, n: self.n });
        }
        if u == v {
            return Err(GraphError::NotSimple { from: u, to: v });
        }
        if self.adjacency[u].contains(&(v as u32)) {
            return Err(GraphError::NotSimple { from: u, to: v });
        }
        if self.adjacency[u].len() >= self.d || self.adjacency[v].len() >= self.d {
            return Err(GraphError::InvalidParameters {
                reason: format!("edge ({u}, {v}) would exceed target degree {}", self.d),
            });
        }
        self.adjacency[u].push(v as u32);
        self.adjacency[v].push(u as u32);
        Ok(())
    }

    /// Whether the edge `{u, v}` has already been added.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        u < self.n && self.adjacency[u].contains(&(v as u32))
    }

    /// Current degree of node `u`.
    pub fn degree_of(&self, u: NodeId) -> usize {
        self.adjacency[u].len()
    }

    /// Number of undirected edges added so far.
    pub fn num_edges(&self) -> usize {
        self.adjacency.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Finalises the graph.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NotRegular`] if some node does not have
    /// exactly `d` edges, and propagates any validation error from
    /// [`RegularGraph::from_adjacency`].
    pub fn build(self) -> Result<RegularGraph, GraphError> {
        for (u, nbrs) in self.adjacency.iter().enumerate() {
            if nbrs.len() != self.d {
                return Err(GraphError::NotRegular {
                    node: u,
                    found: nbrs.len(),
                    expected: self.d,
                });
            }
        }
        let flat: Vec<u32> = self.adjacency.into_iter().flatten().collect();
        RegularGraph::from_adjacency(self.n, self.d, flat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_cycle_of_four() {
        let mut b = GraphBuilder::new(4, 2);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 0)] {
            b.add_edge(u, v).unwrap();
        }
        let g = b.build().unwrap();
        assert_eq!(g.num_edges(), 4);
        assert!(g.has_edge(3, 0));
    }

    #[test]
    fn ports_follow_insertion_order() {
        let mut b = GraphBuilder::new(4, 2);
        b.add_edge(0, 3).unwrap();
        b.add_edge(0, 1).unwrap();
        b.add_edge(1, 2).unwrap();
        b.add_edge(2, 3).unwrap();
        let g = b.build().unwrap();
        // Node 0 saw 3 first, then 1.
        assert_eq!(g.neighbors(0), &[3, 1]);
    }

    #[test]
    fn rejects_duplicate_edges() {
        let mut b = GraphBuilder::new(3, 2);
        b.add_edge(0, 1).unwrap();
        assert_eq!(
            b.add_edge(1, 0),
            Err(GraphError::NotSimple { from: 1, to: 0 })
        );
    }

    #[test]
    fn rejects_self_loop() {
        let mut b = GraphBuilder::new(3, 2);
        assert_eq!(
            b.add_edge(1, 1),
            Err(GraphError::NotSimple { from: 1, to: 1 })
        );
    }

    #[test]
    fn rejects_degree_overflow() {
        let mut b = GraphBuilder::new(4, 1);
        b.add_edge(0, 1).unwrap();
        let err = b.add_edge(0, 2).unwrap_err();
        assert!(matches!(err, GraphError::InvalidParameters { .. }));
    }

    #[test]
    fn build_fails_on_underfull_node() {
        let mut b = GraphBuilder::new(4, 2);
        b.add_edge(0, 1).unwrap();
        b.add_edge(2, 3).unwrap();
        let err = b.build().unwrap_err();
        assert!(matches!(err, GraphError::NotRegular { .. }));
    }

    #[test]
    fn degree_and_edge_counts_track_insertions() {
        let mut b = GraphBuilder::new(4, 3);
        assert_eq!(b.num_edges(), 0);
        b.add_edge(0, 1).unwrap();
        b.add_edge(0, 2).unwrap();
        assert_eq!(b.degree_of(0), 2);
        assert_eq!(b.degree_of(3), 0);
        assert_eq!(b.num_edges(), 2);
        assert!(b.has_edge(2, 0));
    }
}
