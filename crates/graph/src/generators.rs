//! Generators for the d-regular graph families used throughout the
//! paper's analysis and this reproduction's experiments.
//!
//! Every generator returns a fully validated [`RegularGraph`]; port
//! numbering (the order of each node's neighbour list) is deterministic
//! and documented per generator, because rotor-router behaviour depends
//! on it.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::{GraphBuilder, GraphError, RegularGraph};

/// The cycle `C_n` (2-regular). Ports: `0` = successor `(u+1) mod n`,
/// `1` = predecessor `(u−1) mod n`.
///
/// Cycles are the paper's canonical *bad expander* (µ = Θ(1/n²)): claim
/// (ii) of Theorem 2.3 and the rotor-router lower bound of Theorem 4.3
/// are both exercised on cycles.
///
/// # Errors
///
/// Returns an error if `n < 3` (smaller cycles are not simple).
pub fn cycle(n: usize) -> Result<RegularGraph, GraphError> {
    if n < 3 {
        return Err(GraphError::InvalidParameters {
            reason: format!("cycle requires n >= 3, got {n}"),
        });
    }
    let mut adjacency = Vec::with_capacity(n * 2);
    for u in 0..n {
        adjacency.push(((u + 1) % n) as u32);
        adjacency.push(((u + n - 1) % n) as u32);
    }
    RegularGraph::from_adjacency(n, 2, adjacency)
}

/// The complete graph `K_n` ((n−1)-regular). Ports at `u`: neighbours in
/// increasing order of `(u + 1 + p) mod n`.
///
/// # Errors
///
/// Returns an error if `n < 2`.
pub fn complete(n: usize) -> Result<RegularGraph, GraphError> {
    if n < 2 {
        return Err(GraphError::InvalidParameters {
            reason: format!("complete graph requires n >= 2, got {n}"),
        });
    }
    let mut adjacency = Vec::with_capacity(n * (n - 1));
    for u in 0..n {
        for p in 0..n - 1 {
            adjacency.push(((u + 1 + p) % n) as u32);
        }
    }
    RegularGraph::from_adjacency(n, n - 1, adjacency)
}

/// The `dim`-dimensional hypercube `Q_dim` (`n = 2^dim`, `d = dim`).
/// Ports: port `p` flips bit `p`.
///
/// Hypercubes appear throughout the related-work bounds (`O(log^{3/2} n)`
/// for bounded-error schemes, `O(log n)` for randomized diffusion).
///
/// # Errors
///
/// Returns an error if `dim == 0` or `2^dim` overflows `u32` indexing.
pub fn hypercube(dim: usize) -> Result<RegularGraph, GraphError> {
    if dim == 0 {
        return Err(GraphError::InvalidParameters {
            reason: "hypercube requires dim >= 1".into(),
        });
    }
    if dim >= 31 {
        return Err(GraphError::InvalidParameters {
            reason: format!("hypercube dimension {dim} too large"),
        });
    }
    let n = 1usize << dim;
    let mut adjacency = Vec::with_capacity(n * dim);
    for u in 0..n {
        for p in 0..dim {
            adjacency.push((u ^ (1 << p)) as u32);
        }
    }
    RegularGraph::from_adjacency(n, dim, adjacency)
}

/// The `r`-dimensional torus with side length `side` (`n = side^r`,
/// `d = 2r`). Ports: `2k` = +1 step in dimension `k`, `2k+1` = −1 step.
///
/// Constant-dimension tori are the paper's example of polynomially slow
/// mixing with structure (`O(1)` discrepancy for bounded-error schemes on
/// `r = O(1)` tori, §1.2).
///
/// # Errors
///
/// Returns an error if `r == 0`, `side < 3` (side 2 would create parallel
/// edges), or `side^r` overflows.
pub fn torus(r: usize, side: usize) -> Result<RegularGraph, GraphError> {
    if r == 0 {
        return Err(GraphError::InvalidParameters {
            reason: "torus requires r >= 1".into(),
        });
    }
    if side < 3 {
        return Err(GraphError::InvalidParameters {
            reason: format!("torus requires side >= 3 to stay simple, got {side}"),
        });
    }
    let n = side
        .checked_pow(r as u32)
        .filter(|&n| n <= u32::MAX as usize)
        .ok_or_else(|| GraphError::InvalidParameters {
            reason: format!("torus {side}^{r} overflows"),
        })?;
    let d = 2 * r;
    let mut adjacency = Vec::with_capacity(n * d);
    // Mixed-radix coordinates; stride[k] = side^k.
    let mut stride = vec![1usize; r];
    for k in 1..r {
        stride[k] = stride[k - 1] * side;
    }
    for u in 0..n {
        for &st in &stride {
            let coord = (u / st) % side;
            let up = u - coord * st + ((coord + 1) % side) * st;
            let down = u - coord * st + ((coord + side - 1) % side) * st;
            adjacency.push(up as u32);
            adjacency.push(down as u32);
        }
    }
    RegularGraph::from_adjacency(n, d, adjacency)
}

/// A circulant graph: node `i` is adjacent to `(i ± o) mod n` for every
/// offset `o` in `offsets` (`d = 2·offsets.len()`). Ports alternate
/// `+o₀, −o₀, +o₁, −o₁, …`.
///
/// Circulants give tunable-diameter regular graphs for the Ω(d·diam)
/// experiments around Theorem 4.1.
///
/// # Errors
///
/// Returns an error if offsets are empty, repeated, zero, or ≥ n/2
/// rounded up (which would create self-loops or parallel edges).
pub fn circulant(n: usize, offsets: &[usize]) -> Result<RegularGraph, GraphError> {
    if offsets.is_empty() {
        return Err(GraphError::InvalidParameters {
            reason: "circulant requires at least one offset".into(),
        });
    }
    let mut sorted = offsets.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    if sorted.len() != offsets.len() {
        return Err(GraphError::InvalidParameters {
            reason: "circulant offsets must be distinct".into(),
        });
    }
    for &o in offsets {
        if o == 0 || 2 * o >= n {
            return Err(GraphError::InvalidParameters {
                reason: format!("circulant offset {o} must satisfy 0 < o < n/2 (n = {n})"),
            });
        }
    }
    let d = 2 * offsets.len();
    let mut adjacency = Vec::with_capacity(n * d);
    for u in 0..n {
        for &o in offsets {
            adjacency.push(((u + o) % n) as u32);
            adjacency.push(((u + n - o) % n) as u32);
        }
    }
    RegularGraph::from_adjacency(n, d, adjacency)
}

/// The Theorem 4.2 construction: nodes `0..n`, with `i ~ j` iff
/// `(i − j) mod n ∈ {1, …, ⌊d/2⌋}` (in either direction); if `d` is odd,
/// the perfect matching `i ~ i + n/2` is added (requiring even `n`).
///
/// The first `⌊d/2⌋` nodes form a clique-like neighbourhood used to trap
/// stateless algorithms at discrepancy Ω(d).
///
/// # Errors
///
/// Returns an error if `d < 2`, `d ≥ n`, `n` is odd while `d` is odd, or
/// `n ≤ 2·⌊d/2⌋ + 1` (offsets would collide).
pub fn clique_circulant(n: usize, d: usize) -> Result<RegularGraph, GraphError> {
    if d < 2 || d >= n {
        return Err(GraphError::InvalidParameters {
            reason: format!("clique_circulant requires 2 <= d < n, got d = {d}, n = {n}"),
        });
    }
    let half = d / 2;
    if n <= 2 * half + 1 {
        return Err(GraphError::InvalidParameters {
            reason: format!("clique_circulant requires n > d + 1 strictly, got n = {n}, d = {d}"),
        });
    }
    if d % 2 == 1 && n % 2 == 1 {
        return Err(GraphError::InvalidParameters {
            reason: format!("odd degree d = {d} requires even n for the antipodal matching"),
        });
    }
    let mut adjacency = Vec::with_capacity(n * d);
    for u in 0..n {
        for o in 1..=half {
            adjacency.push(((u + o) % n) as u32);
            adjacency.push(((u + n - o) % n) as u32);
        }
        if d % 2 == 1 {
            adjacency.push(((u + n / 2) % n) as u32);
        }
    }
    RegularGraph::from_adjacency(n, d, adjacency)
}

/// The Petersen graph (n = 10, d = 3): a small non-bipartite 3-regular
/// graph with odd girth 5, used by Theorem 4.3 tests beyond the cycle.
pub fn petersen() -> RegularGraph {
    let mut b = GraphBuilder::new(10, 3);
    // Outer 5-cycle 0..4, inner pentagram 5..9, spokes i—i+5.
    for i in 0..5 {
        b.add_edge(i, (i + 1) % 5).expect("outer cycle edge");
    }
    for i in 0..5 {
        b.add_edge(5 + i, 5 + (i + 2) % 5).expect("pentagram edge");
    }
    for i in 0..5 {
        b.add_edge(i, i + 5).expect("spoke edge");
    }
    b.build().expect("petersen graph is valid")
}

/// The complete bipartite graph `K_{d,d}` (n = 2d, d-regular, bipartite).
/// Ports at `u`: partners in increasing index order.
///
/// # Errors
///
/// Returns an error if `d == 0`.
pub fn complete_bipartite(d: usize) -> Result<RegularGraph, GraphError> {
    if d == 0 {
        return Err(GraphError::InvalidParameters {
            reason: "complete bipartite requires d >= 1".into(),
        });
    }
    let n = 2 * d;
    let mut adjacency = Vec::with_capacity(n * d);
    for u in 0..n {
        if u < d {
            for p in 0..d {
                adjacency.push((d + p) as u32);
            }
        } else {
            for p in 0..d {
                adjacency.push(p as u32);
            }
        }
    }
    RegularGraph::from_adjacency(n, d, adjacency)
}

/// A random simple d-regular graph via the configuration (pairing)
/// model with double-edge-swap repair, seeded deterministically.
///
/// For fixed `d ≥ 3` these graphs are expanders with high probability,
/// so they stand in for the "constant-degree expander" rows of the
/// paper's Table 1 (where the `O(d·log n / µ)` bound of \[17\] is tight
/// and this paper improves it to `O(d·√(log n / µ))`).
///
/// A uniform pairing of half-edges is drawn first; self-loops and
/// parallel edges are then removed by random double edge swaps (the
/// standard repair, which perturbs the distribution negligibly for the
/// `d ≪ n` regime used here — plain rejection would need `e^{Θ(d²)}`
/// attempts and is hopeless beyond `d ≈ 6`).
///
/// # Errors
///
/// Returns an error if `n·d` is odd, `d >= n`, or repair keeps failing
/// (practically unreachable when `d ≤ n/4`).
pub fn random_regular(n: usize, d: usize, seed: u64) -> Result<RegularGraph, GraphError> {
    if d == 0 || d >= n {
        return Err(GraphError::InvalidParameters {
            reason: format!("random_regular requires 0 < d < n, got d = {d}, n = {n}"),
        });
    }
    if !(n * d).is_multiple_of(2) {
        return Err(GraphError::InvalidParameters {
            reason: format!("random_regular requires even n*d, got n = {n}, d = {d}"),
        });
    }
    let mut rng = StdRng::seed_from_u64(seed);
    const MAX_ATTEMPTS: usize = 50;
    for _ in 0..MAX_ATTEMPTS {
        if let Some(g) = pairing_with_repair(n, d, &mut rng) {
            return Ok(g);
        }
    }
    Err(GraphError::GenerationFailed {
        generator: "random_regular",
        attempts: MAX_ATTEMPTS,
    })
}

/// Normalised key for an undirected edge.
fn edge_key(u: u32, v: u32) -> (u32, u32) {
    (u.min(v), u.max(v))
}

/// One configuration-model draw followed by double-edge-swap repair of
/// self-loops and parallel edges.
fn pairing_with_repair(n: usize, d: usize, rng: &mut StdRng) -> Option<RegularGraph> {
    use std::collections::HashMap;

    let mut stubs: Vec<u32> = (0..n as u32)
        .flat_map(|u| std::iter::repeat_n(u, d))
        .collect();
    stubs.shuffle(rng);
    let mut pairs: Vec<(u32, u32)> = stubs.chunks_exact(2).map(|c| (c[0], c[1])).collect();

    let mut count: HashMap<(u32, u32), u32> = HashMap::with_capacity(pairs.len());
    for &(u, v) in &pairs {
        *count.entry(edge_key(u, v)).or_insert(0) += 1;
    }
    let is_bad = |pair: (u32, u32), count: &HashMap<(u32, u32), u32>| {
        pair.0 == pair.1 || count[&edge_key(pair.0, pair.1)] > 1
    };

    let m = pairs.len();
    let max_rounds = 200;
    for _ in 0..max_rounds {
        let bad: Vec<usize> = (0..m).filter(|&i| is_bad(pairs[i], &count)).collect();
        if bad.is_empty() {
            break;
        }
        for &i in &bad {
            if !is_bad(pairs[i], &count) {
                continue; // fixed as a side effect of an earlier swap
            }
            // Try random partners until a legal double swap appears.
            for _ in 0..64 {
                let j = rng.gen_range(0..m);
                if j == i {
                    continue;
                }
                let (u, v) = pairs[i];
                let (mut x, mut y) = pairs[j];
                if rng.gen_bool(0.5) {
                    std::mem::swap(&mut x, &mut y);
                }
                // Proposed replacement: (u, x) and (v, y).
                if u == x || v == y {
                    continue;
                }
                let (k1, k2) = (edge_key(u, x), edge_key(v, y));
                if k1 == k2
                    || count.get(&k1).copied().unwrap_or(0) > 0
                    || count.get(&k2).copied().unwrap_or(0) > 0
                {
                    continue;
                }
                // Commit the swap.
                *count.get_mut(&edge_key(u, v)).expect("tracked") -= 1;
                *count
                    .get_mut(&edge_key(pairs[j].0, pairs[j].1))
                    .expect("tracked") -= 1;
                *count.entry(k1).or_insert(0) += 1;
                *count.entry(k2).or_insert(0) += 1;
                pairs[i] = (u, x);
                pairs[j] = (v, y);
                break;
            }
        }
    }
    if (0..m).any(|i| is_bad(pairs[i], &count)) {
        return None;
    }

    let mut builder = GraphBuilder::new(n, d);
    for &(u, v) in &pairs {
        builder.add_edge(u as usize, v as usize).ok()?;
    }
    builder.build().ok()
}

/// An odd cycle with chords: `C_n` plus the offset-`k` circulant edges,
/// giving a 4-regular non-bipartite graph whose odd girth is controlled
/// by `n` and `k`. Used to exercise Theorem 4.3 beyond plain cycles.
///
/// `n` must be odd: an even `n` with odd `k` yields a *bipartite*
/// circulant (every offset-1 and offset-`k` edge flips node parity),
/// the opposite of what this generator documents, and even `k` merely
/// hides the problem behind a different girth. Odd `n` makes the
/// offset-1 cycle itself an odd cycle, so non-bipartiteness holds for
/// every valid `k`.
///
/// # Errors
///
/// Returns an error if `n` is even, or under the same conditions as
/// [`circulant`].
pub fn chorded_cycle(n: usize, k: usize) -> Result<RegularGraph, GraphError> {
    if n.is_multiple_of(2) {
        let detail = if k % 2 == 1 {
            "the graph would even be bipartite"
        } else {
            "the offset-1 cycle would be even"
        };
        return Err(GraphError::InvalidParameters {
            reason: format!(
                "chorded_cycle requires odd n (got n = {n}, k = {k}): the generator's \
                 odd-cycle non-bipartite contract for the Theorem 4.3 experiments \
                 needs odd n — here {detail}"
            ),
        });
    }
    circulant(n, &[1, k])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_structure() {
        let g = cycle(5).unwrap();
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.degree(), 2);
        assert_eq!(g.neighbors(0), &[1, 4]);
        assert_eq!(g.neighbors(4), &[0, 3]);
        assert!(cycle(2).is_err());
    }

    #[test]
    fn complete_structure() {
        let g = complete(5).unwrap();
        assert_eq!(g.degree(), 4);
        assert_eq!(g.num_edges(), 10);
        for u in 0..5 {
            for v in 0..5 {
                assert_eq!(g.has_edge(u, v), u != v);
            }
        }
    }

    #[test]
    fn hypercube_structure() {
        let g = hypercube(3).unwrap();
        assert_eq!(g.num_nodes(), 8);
        assert_eq!(g.degree(), 3);
        assert_eq!(g.neighbors(0b101), &[0b100, 0b111, 0b001]);
        assert!(hypercube(0).is_err());
    }

    #[test]
    fn torus_structure() {
        let g = torus(2, 4).unwrap();
        assert_eq!(g.num_nodes(), 16);
        assert_eq!(g.degree(), 4);
        // Node (0,0) = 0: +x is 1 (stride 1), -x is 3, +y is 4, -y is 12.
        assert_eq!(g.neighbors(0), &[1, 3, 4, 12]);
        assert!(torus(2, 2).is_err());
        assert!(torus(0, 4).is_err());
    }

    #[test]
    fn torus_one_dim_is_cycle() {
        let t = torus(1, 7).unwrap();
        let c = cycle(7).unwrap();
        assert_eq!(t.num_edges(), c.num_edges());
        for u in 0..7 {
            let mut a = t.neighbors(u).to_vec();
            let mut b = c.neighbors(u).to_vec();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn circulant_structure() {
        let g = circulant(10, &[1, 2]).unwrap();
        assert_eq!(g.degree(), 4);
        assert!(g.has_edge(0, 2));
        assert!(g.has_edge(0, 8));
        assert!(!g.has_edge(0, 3));
        assert!(circulant(10, &[0]).is_err());
        assert!(circulant(10, &[5]).is_err());
        assert!(circulant(10, &[1, 1]).is_err());
        assert!(circulant(10, &[]).is_err());
    }

    #[test]
    fn clique_circulant_even_degree() {
        let g = clique_circulant(12, 4).unwrap();
        assert_eq!(g.degree(), 4);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(0, 2));
        assert!(g.has_edge(0, 10));
        assert!(!g.has_edge(0, 3));
    }

    #[test]
    fn clique_circulant_odd_degree_has_matching() {
        let g = clique_circulant(12, 5).unwrap();
        assert_eq!(g.degree(), 5);
        assert!(g.has_edge(0, 6));
        assert!(clique_circulant(11, 5).is_err());
    }

    #[test]
    fn clique_circulant_rejects_bad_parameters() {
        assert!(clique_circulant(5, 1).is_err());
        assert!(clique_circulant(5, 5).is_err());
        assert!(clique_circulant(5, 4).is_err());
    }

    #[test]
    fn petersen_is_valid_and_three_regular() {
        let g = petersen();
        assert_eq!(g.num_nodes(), 10);
        assert_eq!(g.degree(), 3);
        assert_eq!(g.num_edges(), 15);
    }

    #[test]
    fn complete_bipartite_structure() {
        let g = complete_bipartite(3).unwrap();
        assert_eq!(g.num_nodes(), 6);
        assert_eq!(g.degree(), 3);
        assert!(g.has_edge(0, 3));
        assert!(!g.has_edge(0, 1));
        assert!(complete_bipartite(0).is_err());
    }

    #[test]
    fn random_regular_is_valid_and_deterministic() {
        let g1 = random_regular(64, 4, 7).unwrap();
        let g2 = random_regular(64, 4, 7).unwrap();
        assert_eq!(g1, g2);
        assert_eq!(g1.degree(), 4);
        let g3 = random_regular(64, 4, 8).unwrap();
        assert_ne!(g1, g3, "different seeds should give different graphs");
    }

    #[test]
    fn random_regular_rejects_bad_parameters() {
        assert!(random_regular(5, 3, 0).is_err(), "odd n*d");
        assert!(random_regular(4, 4, 0).is_err(), "d >= n");
        assert!(random_regular(4, 0, 0).is_err(), "d = 0");
    }

    #[test]
    fn random_regular_handles_high_degree() {
        // Plain rejection sampling dies around d = 6; the swap repair
        // must handle the d = 8..16 range the experiments use.
        for d in [8usize, 12, 16] {
            let g = random_regular(64, d, 9).unwrap();
            assert_eq!(g.degree(), d);
            assert_eq!(g.num_edges(), 64 * d / 2);
            assert!(
                crate::traversal::is_connected(&g),
                "d = {d} sample disconnected"
            );
        }
    }

    #[test]
    fn random_regular_experiment_seeds_are_connected() {
        // The experiment suite fixes seed 42; connectivity is required
        // for the spectral-gap computation to be meaningful.
        for n in [64usize, 256, 1024] {
            let g = random_regular(n, 4, 42).unwrap();
            assert!(crate::traversal::is_connected(&g), "n = {n}");
        }
    }

    #[test]
    fn chorded_cycle_structure() {
        let g = chorded_cycle(11, 3).unwrap();
        assert_eq!(g.degree(), 4);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(0, 3));
        assert!(chorded_cycle(11, 1).is_err(), "duplicate offset");
    }

    #[test]
    fn chorded_cycle_rejects_even_n() {
        // Even n with odd k is bipartite — the exact opposite of the
        // documented contract — and must be refused with a clear reason.
        for (n, k) in [(12usize, 3usize), (12, 4), (100, 7)] {
            let err = chorded_cycle(n, k).unwrap_err();
            assert!(
                err.to_string().contains("odd n"),
                "({n}, {k}) error should name the odd-n requirement, got: {err}"
            );
        }
    }

    #[test]
    fn chorded_cycle_odd_n_is_non_bipartite_for_all_valid_k() {
        for (n, k) in [(9usize, 3usize), (11, 3), (11, 4), (15, 6), (21, 8)] {
            let g = chorded_cycle(n, k).unwrap();
            assert!(
                !crate::properties::is_bipartite(&g),
                "chorded_cycle({n}, {k}) must be non-bipartite"
            );
        }
    }
}
