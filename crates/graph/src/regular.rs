use crate::GraphError;

/// Index of a node in a graph. Nodes are anonymous (the paper requires no
/// identifiers, §1.3); indices exist only so loads and flows can be stored
/// in flat vectors.
pub type NodeId = usize;

/// A symmetric d-regular graph `G = (V, E)` in compressed sparse row form.
///
/// This is the *original graph* of the paper's model (§1.3): every node
/// has exactly `d` incident original edges, every directed edge has its
/// reverse, and the graph is simple (no self-loops, no repeated edges).
/// These invariants are validated at construction time and hold for every
/// value of this type.
///
/// Neighbours of node `u` occupy the slice
/// `adjacency[u*d .. (u+1)*d]`; the position of a neighbour within that
/// slice is the node's **original-edge port number**, which balancers use
/// to address edges without global identifiers.
///
/// # Example
///
/// ```
/// use dlb_graph::generators;
///
/// let g = generators::hypercube(4)?;
/// assert_eq!(g.num_nodes(), 16);
/// assert_eq!(g.degree(), 4);
/// assert_eq!(g.num_edges(), 16 * 4 / 2);
/// // Neighbour lists are sorted, so ports are deterministic.
/// assert_eq!(g.neighbors(0), &[1, 2, 4, 8]);
/// # Ok::<(), dlb_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RegularGraph {
    n: usize,
    d: usize,
    /// Flat adjacency: `adjacency[u*d + p]` is the neighbour of `u` behind
    /// original port `p`.
    adjacency: Vec<u32>,
    /// Nodes currently asleep (failed), as a sorted list. Empty for
    /// every freshly constructed graph; mutated only by
    /// [`apply_sleep`](RegularGraph::apply_sleep) /
    /// [`apply_wake`](RegularGraph::apply_wake) (see [`crate::mutate`]).
    /// Sleep state is part of the topology, so it participates in
    /// equality and hashing.
    asleep: Vec<u32>,
}

impl RegularGraph {
    /// Builds a graph from a flat adjacency table, validating regularity,
    /// symmetry and simplicity.
    ///
    /// `adjacency` must have length `n * d` and `adjacency[u*d..][..d]`
    /// must list the neighbours of node `u` (in any order; they are kept
    /// as given so generators control port numbering).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] if `n == 0`, the table has the wrong shape,
    /// an index is out of range, some node's neighbour list contains
    /// duplicates or `u` itself, or some directed edge has no reverse.
    pub fn from_adjacency(n: usize, d: usize, adjacency: Vec<u32>) -> Result<Self, GraphError> {
        if n == 0 {
            return Err(GraphError::EmptyGraph);
        }
        if d >= n {
            return Err(GraphError::InvalidParameters {
                reason: format!("degree d = {d} must be smaller than n = {n}"),
            });
        }
        if adjacency.len() != n * d {
            return Err(GraphError::InvalidParameters {
                reason: format!(
                    "adjacency table has {} entries, expected n*d = {}",
                    adjacency.len(),
                    n * d
                ),
            });
        }
        let graph = RegularGraph {
            n,
            d,
            adjacency,
            asleep: Vec::new(),
        };
        graph.validate()?;
        Ok(graph)
    }

    fn validate(&self) -> Result<(), GraphError> {
        let n = self.n;
        let d = self.d;
        // Range + simplicity per node.
        let mut seen = vec![false; n];
        for u in 0..n {
            let nbrs = self.neighbors(u);
            for &v in nbrs {
                let v = v as usize;
                if v >= n {
                    return Err(GraphError::NodeOutOfRange { node: v, n });
                }
                if v == u {
                    return Err(GraphError::NotSimple { from: u, to: v });
                }
                if seen[v] {
                    return Err(GraphError::NotSimple { from: u, to: v });
                }
                seen[v] = true;
            }
            for &v in nbrs {
                seen[v as usize] = false;
            }
        }
        // Symmetry: every directed edge has a reverse.
        for u in 0..n {
            for &v in self.neighbors(u) {
                let v = v as usize;
                if !self.neighbors(v).contains(&(u as u32)) {
                    return Err(GraphError::NotSymmetric { from: u, to: v });
                }
            }
        }
        let _ = d;
        Ok(())
    }

    /// Number of nodes `n`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// The regular degree `d` (number of original edges per node).
    #[inline]
    pub fn degree(&self) -> usize {
        self.d
    }

    /// Number of undirected edges `|E| = n·d/2`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.n * self.d / 2
    }

    /// Neighbours of `u`, indexed by original port number.
    ///
    /// # Panics
    ///
    /// Panics if `u >= self.num_nodes()`.
    #[inline]
    pub fn neighbors(&self, u: NodeId) -> &[u32] {
        &self.adjacency[u * self.d..(u + 1) * self.d]
    }

    /// The whole flat port-ordered adjacency array (`n·d` slots,
    /// node-major: slot `u·d + p` is `neighbor(u, p)`). Two graphs
    /// with equal slot arrays present identical adjacency *and* port
    /// numbering — the one-comparison staleness test incremental
    /// validators use to detect topology drift.
    #[inline]
    #[must_use]
    pub fn adjacency_slots(&self) -> &[u32] {
        &self.adjacency
    }

    /// The neighbour of `u` behind original port `p`.
    ///
    /// # Panics
    ///
    /// Panics if `u >= self.num_nodes()` or `p >= self.degree()`.
    #[inline]
    pub fn neighbor(&self, u: NodeId, p: usize) -> NodeId {
        debug_assert!(p < self.d);
        self.adjacency[u * self.d + p] as NodeId
    }

    /// The port of `v` through which the edge `(u, v)` arrives back at
    /// `u`, i.e. the reverse-port map. Returns `None` if `(u, v)` is not
    /// an edge.
    ///
    /// Balancers use this to route a token sent by `u` on port `p` into
    /// `v`'s load without a global edge table.
    pub fn reverse_port(&self, u: NodeId, v: NodeId) -> Option<usize> {
        self.neighbors(v).iter().position(|&w| w as usize == u)
    }

    /// Iterates over all directed edges `(u, p, v)` — node, original
    /// port, neighbour.
    pub fn directed_edges(&self) -> impl Iterator<Item = (NodeId, usize, NodeId)> + '_ {
        (0..self.n).flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .enumerate()
                .map(move |(p, &v)| (u, p, v as NodeId))
        })
    }

    /// Iterates over all undirected edges `{u, v}` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.directed_edges()
            .filter(|&(u, _, v)| u < v)
            .map(|(u, _, v)| (u, v))
    }

    /// Whether `{u, v}` is an edge of the graph.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        u < self.n && self.neighbors(u).contains(&(v as u32))
    }

    /// Whether node `u` is awake (not failed). Freshly constructed
    /// graphs have every node awake; see [`crate::mutate`] for the
    /// sleep/wake mutation API.
    ///
    /// # Panics
    ///
    /// Panics if `u >= self.num_nodes()`.
    #[inline]
    pub fn is_awake(&self, u: NodeId) -> bool {
        assert!(u < self.n, "node {u} out of range");
        self.asleep.binary_search(&(u as u32)).is_err()
    }

    /// The currently asleep nodes, sorted ascending.
    #[inline]
    pub fn asleep_nodes(&self) -> &[u32] {
        &self.asleep
    }

    /// Number of asleep nodes (`0` means the whole graph is live).
    #[inline]
    pub fn asleep_count(&self) -> usize {
        self.asleep.len()
    }

    /// Direct access to the sleep list for the mutation module.
    pub(crate) fn asleep_mut(&mut self) -> &mut Vec<u32> {
        &mut self.asleep
    }

    /// Direct access to the adjacency table for the mutation module
    /// (which re-establishes the structural invariants itself).
    pub(crate) fn adjacency_mut(&mut self) -> &mut Vec<u32> {
        &mut self.adjacency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> RegularGraph {
        // K3: each node adjacent to the other two.
        RegularGraph::from_adjacency(3, 2, vec![1, 2, 0, 2, 0, 1]).unwrap()
    }

    #[test]
    fn triangle_basic_accessors() {
        let g = triangle();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.degree(), 2);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbor(1, 0), 0);
        assert!(g.has_edge(0, 2));
        assert!(!g.has_edge(0, 0));
    }

    #[test]
    fn reverse_port_roundtrip() {
        let g = triangle();
        for (u, p, v) in g.directed_edges().collect::<Vec<_>>() {
            let back = g.reverse_port(u, v).expect("edge must have reverse");
            assert_eq!(g.neighbor(v, back), u);
            let _ = p;
        }
    }

    #[test]
    fn reverse_port_absent_for_non_edges() {
        // C4: 0-1-2-3-0; (0,2) is not an edge.
        let g = RegularGraph::from_adjacency(4, 2, vec![1, 3, 0, 2, 1, 3, 0, 2]).unwrap();
        assert_eq!(g.reverse_port(0, 2), None);
    }

    #[test]
    fn rejects_empty_graph() {
        assert_eq!(
            RegularGraph::from_adjacency(0, 0, vec![]),
            Err(GraphError::EmptyGraph)
        );
    }

    #[test]
    fn rejects_degree_not_below_n() {
        let err = RegularGraph::from_adjacency(3, 3, vec![0; 9]).unwrap_err();
        assert!(matches!(err, GraphError::InvalidParameters { .. }));
    }

    #[test]
    fn rejects_wrong_table_shape() {
        let err = RegularGraph::from_adjacency(3, 2, vec![1, 2, 0]).unwrap_err();
        assert!(matches!(err, GraphError::InvalidParameters { .. }));
    }

    #[test]
    fn rejects_out_of_range_neighbor() {
        let err = RegularGraph::from_adjacency(3, 2, vec![1, 9, 0, 2, 0, 1]).unwrap_err();
        assert_eq!(err, GraphError::NodeOutOfRange { node: 9, n: 3 });
    }

    #[test]
    fn rejects_self_loop_in_original_graph() {
        let err = RegularGraph::from_adjacency(3, 2, vec![0, 2, 2, 0, 0, 1]).unwrap_err();
        assert_eq!(err, GraphError::NotSimple { from: 0, to: 0 });
    }

    #[test]
    fn rejects_duplicate_edge() {
        let err = RegularGraph::from_adjacency(4, 2, vec![1, 1, 0, 2, 1, 3, 0, 2]).unwrap_err();
        assert_eq!(err, GraphError::NotSimple { from: 0, to: 1 });
    }

    #[test]
    fn rejects_asymmetric_adjacency() {
        // 0 lists 1, but 1 does not list 0.
        let err = RegularGraph::from_adjacency(4, 2, vec![1, 3, 2, 3, 1, 3, 0, 2]).unwrap_err();
        assert!(matches!(err, GraphError::NotSymmetric { .. }));
    }

    #[test]
    fn edges_are_each_listed_once() {
        let g = triangle();
        let mut edges: Vec<_> = g.edges().collect();
        edges.sort_unstable();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn directed_edges_count_is_nd() {
        let g = triangle();
        assert_eq!(g.directed_edges().count(), 3 * 2);
    }
}
