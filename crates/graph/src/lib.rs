//! d-regular graph substrate for deterministic diffusion load balancing.
//!
//! This crate provides every graph-shaped ingredient of the model in
//! Berenbrink, Klasing, Kosowski, Mallmann-Trenn, Uznański,
//! *Improved Analysis of Deterministic Load-Balancing Schemes* (PODC 2015):
//!
//! * [`RegularGraph`] — a compact CSR representation of a symmetric
//!   d-regular graph `G = (V, E)` with validation of regularity and
//!   symmetry, the *original graph* of the paper (§1.3);
//! * [`BalancingGraph`] — the graph `G⁺` obtained by attaching `d°`
//!   self-loops to every node, with a per-node **port** model (ports
//!   `0..d` are original edges, ports `d..d⁺` are self-loops) used by all
//!   balancers;
//! * [`generators`] — the graph families the paper's evaluation sweeps
//!   (cycles, tori, hypercubes, random regular graphs, circulants, the
//!   clique-circulant of Theorem 4.2, …);
//! * [`traversal`] and [`properties`] — BFS distances, diameter, odd
//!   girth and bipartiteness, needed by the lower-bound constructions of
//!   Section 4;
//! * [`connectivity`] — incrementally maintained dynamic connectivity
//!   (an HDT-style spanning forest with leveled replacement search), so
//!   churn generators validate candidate swaps in amortised near-`O(d)`
//!   instead of a full BFS per candidate;
//! * [`relabel`] — locality-aware node relabelings (BFS and reverse
//!   Cuthill–McKee) with exact inverse mapping, so cache-conscious runs
//!   report results in original ids.
//!
//! # Example
//!
//! ```
//! use dlb_graph::{generators, BalancingGraph};
//!
//! // A 32-node cycle (2-regular), augmented with d° = 2 self-loops per
//! // node as the paper's Theorem 2.3 requires (d⁺ = 2d).
//! let g = generators::cycle(32)?;
//! let gp = BalancingGraph::with_self_loops(g, 2)?;
//! assert_eq!(gp.degree_plus(), 4);
//! assert_eq!(gp.num_self_loops(), 2);
//! # Ok::<(), dlb_graph::GraphError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod balancing;
mod builder;
pub mod connectivity;
mod error;
pub mod generators;
pub mod mutate;
pub mod properties;
mod regular;
pub mod relabel;
pub mod traversal;

pub use balancing::{BalancingGraph, PortKind, PortOrder};
pub use builder::GraphBuilder;
pub use connectivity::DynamicConnectivity;
pub use error::GraphError;
pub use mutate::TopologyEvent;
pub use regular::{NodeId, RegularGraph};
pub use relabel::Relabeling;
