//! Breadth-first traversal utilities: distances, eccentricity, diameter
//! and connectivity.
//!
//! The lower-bound constructions of Section 4 are built on the distance
//! labelling `b(v) = dist(v, u)` (Theorems 4.1 and 4.3), and the
//! Ω(d·diam) statements need exact diameters for verification.

use std::collections::VecDeque;

use crate::{NodeId, RegularGraph};

/// Sentinel distance for unreachable nodes.
pub const UNREACHABLE: u32 = u32::MAX;

/// Single-source BFS distances from `source`; unreachable nodes get
/// [`UNREACHABLE`].
///
/// This is the labelling `b(v)` used by the proofs of Theorems 4.1 and
/// 4.3.
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn bfs_distances(graph: &RegularGraph, source: NodeId) -> Vec<u32> {
    assert!(source < graph.num_nodes(), "source out of range");
    let mut dist = vec![UNREACHABLE; graph.num_nodes()];
    let mut queue = VecDeque::new();
    dist[source] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u];
        for &v in graph.neighbors(u) {
            let v = v as usize;
            if dist[v] == UNREACHABLE {
                dist[v] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// The eccentricity of `source`: the largest finite BFS distance from it.
///
/// Returns `None` if some node is unreachable from `source`.
pub fn eccentricity(graph: &RegularGraph, source: NodeId) -> Option<u32> {
    let dist = bfs_distances(graph, source);
    let mut ecc = 0;
    for &d in &dist {
        if d == UNREACHABLE {
            return None;
        }
        ecc = ecc.max(d);
    }
    Some(ecc)
}

/// Whether the graph is connected.
pub fn is_connected(graph: &RegularGraph) -> bool {
    eccentricity(graph, 0).is_some()
}

/// The exact diameter, by running BFS from every node (`O(n·m)`).
///
/// Returns `None` for disconnected graphs. Suitable for the experiment
/// sizes in this reproduction (n ≤ ~10⁴ for diameter-verified runs);
/// use [`diameter_double_sweep`] for a fast lower estimate on larger
/// graphs.
pub fn diameter(graph: &RegularGraph) -> Option<u32> {
    let mut best = 0;
    for u in 0..graph.num_nodes() {
        best = best.max(eccentricity(graph, u)?);
    }
    Some(best)
}

/// A lower bound on the diameter via the classic double-sweep heuristic:
/// BFS from `start`, then BFS from the farthest node found. Exact on
/// trees and usually tight on the families used here.
///
/// Returns `None` for disconnected graphs.
pub fn diameter_double_sweep(graph: &RegularGraph, start: NodeId) -> Option<u32> {
    let d1 = bfs_distances(graph, start);
    let (far, &best) = d1
        .iter()
        .enumerate()
        .max_by_key(|&(_, &d)| if d == UNREACHABLE { 0 } else { d })?;
    if best == UNREACHABLE || d1.contains(&UNREACHABLE) {
        return None;
    }
    eccentricity(graph, far)
}

/// A farthest pair `(u, w)` realising the double-sweep distance, used by
/// the Theorem 4.1 construction which needs two nodes at distance
/// ~diam(G).
pub fn farthest_pair(graph: &RegularGraph, start: NodeId) -> Option<(NodeId, NodeId, u32)> {
    let d1 = bfs_distances(graph, start);
    if d1.contains(&UNREACHABLE) {
        return None;
    }
    let u = d1
        .iter()
        .enumerate()
        .max_by_key(|&(_, &d)| d)
        .map(|(i, _)| i)?;
    let d2 = bfs_distances(graph, u);
    let (w, &dist) = d2.iter().enumerate().max_by_key(|&(_, &d)| d)?;
    Some((u, w, dist))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn bfs_on_cycle_is_ring_distance() {
        let g = generators::cycle(8).unwrap();
        let dist = bfs_distances(&g, 0);
        assert_eq!(dist, vec![0, 1, 2, 3, 4, 3, 2, 1]);
    }

    #[test]
    fn cycle_diameter_is_half_n() {
        for n in [4usize, 5, 9, 16] {
            let g = generators::cycle(n).unwrap();
            assert_eq!(diameter(&g), Some((n / 2) as u32), "n = {n}");
        }
    }

    #[test]
    fn hypercube_diameter_is_dimension() {
        let g = generators::hypercube(5).unwrap();
        assert_eq!(diameter(&g), Some(5));
    }

    #[test]
    fn torus_diameter_is_sum_of_half_sides() {
        let g = generators::torus(2, 5).unwrap();
        assert_eq!(diameter(&g), Some(4)); // 2 + 2
    }

    #[test]
    fn complete_graph_diameter_is_one() {
        let g = generators::complete(6).unwrap();
        assert_eq!(diameter(&g), Some(1));
    }

    #[test]
    fn double_sweep_matches_exact_on_cycle() {
        let g = generators::cycle(17).unwrap();
        assert_eq!(diameter_double_sweep(&g, 3), diameter(&g));
    }

    #[test]
    fn petersen_has_diameter_two() {
        let g = generators::petersen();
        assert_eq!(diameter(&g), Some(2));
        assert!(is_connected(&g));
    }

    #[test]
    fn farthest_pair_realises_diameter_on_cycle() {
        let g = generators::cycle(10).unwrap();
        let (u, w, dist) = farthest_pair(&g, 2).unwrap();
        assert_eq!(dist, 5);
        let d = bfs_distances(&g, u);
        assert_eq!(d[w], 5);
    }

    #[test]
    fn eccentricity_of_cycle_node() {
        let g = generators::cycle(9).unwrap();
        assert_eq!(eccentricity(&g, 4), Some(4));
    }
}
