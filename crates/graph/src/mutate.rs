//! In-place topology mutation: regularity-preserving graph churn.
//!
//! The paper analyses its schemes on a *fixed* d-regular graph; the
//! dynamic-network literature (Gilbert–Meir–Paz; Berenbrink et al.,
//! *Dynamic Averaging Load Balancing on Arbitrary Graphs*) stresses
//! them on graphs that change under their feet. This module is the
//! graph half of that regime: a small vocabulary of [`TopologyEvent`]s
//! that each mutate the CSR **in place** in `O(changed edges)` — no
//! rebuild, no revalidation pass — while *provably* preserving the
//! invariants every balancer relies on:
//!
//! * **double-edge swaps** ([`RegularGraph::apply_swap`]) replace the
//!   edges `{a,b}, {c,d}` by `{a,c}, {b,d}`. Exactly four adjacency
//!   slots change, one per endpoint, so the graph stays d-regular and
//!   symmetric by construction; simplicity is checked up front and the
//!   **port numbering of every untouched port is preserved** — the
//!   rewired port keeps its index and merely leads elsewhere, which is
//!   precisely the churn that stresses port-addressed schemes;
//! * **port permutations** ([`RegularGraph::apply_port_permutation`])
//!   renumber one node's original ports without touching any edge;
//! * **node sleep/wake** ([`RegularGraph::apply_sleep`] /
//!   [`RegularGraph::apply_wake`]) mark a node failed/recovered. Edges
//!   stay in place (the physical network keeps the node reachable);
//!   the *load* consequence — an asleep node deterministically hands
//!   its queue to live neighbours at every round boundary — is computed
//!   by [`handoff_deltas`] and applied by the engine as part of its
//!   round structure.
//!
//! Every event has an exact inverse ([`TopologyEvent::inverted`]), and
//! applying the inverse restores the graph **bit for bit** (the same
//! adjacency slots are written back) — this is what lets an erroring
//! engine round roll its topology mutation back alongside its load
//! injection.
//!
//! Swaps do *not* necessarily preserve connectivity (swapping two edges
//! of a cycle splits it in two); schedule generators that promise
//! connectivity validate candidate swaps on a scratch copy before
//! emitting them (see the `dlb-topology` crate).

use crate::{GraphError, NodeId, RegularGraph};

/// One atomic topology mutation. See the [module docs](self) for the
/// semantics and preserved invariants of each variant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyEvent {
    /// Double-edge swap: `{a,b}, {c,d}` → `{a,c}, {b,d}`.
    Swap {
        /// First endpoint of the first removed edge (gains edge to `c`).
        a: NodeId,
        /// Second endpoint of the first removed edge (gains edge to `d`).
        b: NodeId,
        /// First endpoint of the second removed edge (gains edge to `a`).
        c: NodeId,
        /// Second endpoint of the second removed edge (gains edge to `b`).
        d: NodeId,
    },
    /// Renumber one node's original ports: new port `i` addresses the
    /// neighbour previously behind port `perm[i]`.
    PermutePorts {
        /// The node whose ports are renumbered.
        node: NodeId,
        /// A permutation of `0..d`.
        perm: Vec<u16>,
    },
    /// Mark a node failed. Its load is handed to live neighbours at
    /// every subsequent round boundary ([`handoff_deltas`]).
    Sleep {
        /// The node going down.
        node: NodeId,
    },
    /// Mark a failed node recovered.
    Wake {
        /// The node coming back.
        node: NodeId,
    },
}

impl TopologyEvent {
    /// The exact inverse event: applying it after a successful
    /// application restores the graph bit for bit (the swap inverse
    /// rewrites the very same four adjacency slots; the permutation
    /// inverse is the inverse permutation; sleep and wake undo each
    /// other — the *load* handoff of a sleep round is rolled back by
    /// the engine's delta machinery, not by this inverse).
    #[must_use]
    pub fn inverted(&self) -> TopologyEvent {
        match *self {
            // Forward removed {a,b},{c,d} and added {a,c},{b,d}; the
            // inverse must remove {a,c},{b,d} and add {a,b},{c,d} —
            // which is the swap on the pairs (a,c) and (b,d).
            TopologyEvent::Swap { a, b, c, d } => TopologyEvent::Swap { a, b: c, c: b, d },
            TopologyEvent::PermutePorts { node, ref perm } => {
                let mut inverse = vec![0u16; perm.len()];
                for (i, &p) in perm.iter().enumerate() {
                    inverse[p as usize] = i as u16;
                }
                TopologyEvent::PermutePorts {
                    node,
                    perm: inverse,
                }
            }
            TopologyEvent::Sleep { node } => TopologyEvent::Wake { node },
            TopologyEvent::Wake { node } => TopologyEvent::Sleep { node },
        }
    }

    /// A short human-readable tag for error messages and traces.
    pub fn kind(&self) -> &'static str {
        match self {
            TopologyEvent::Swap { .. } => "swap",
            TopologyEvent::PermutePorts { .. } => "permute-ports",
            TopologyEvent::Sleep { .. } => "sleep",
            TopologyEvent::Wake { .. } => "wake",
        }
    }
}

impl RegularGraph {
    fn check_node(&self, u: NodeId) -> Result<(), GraphError> {
        if u >= self.num_nodes() {
            return Err(GraphError::NodeOutOfRange {
                node: u,
                n: self.num_nodes(),
            });
        }
        Ok(())
    }

    /// Applies the double-edge swap `{a,b}, {c,d}` → `{a,c}, {b,d}` in
    /// place: exactly four adjacency slots are rewritten (the slot of
    /// `b` in `a`'s list now holds `c`, and so on), so d-regularity,
    /// symmetry and the port numbers of all untouched ports are
    /// preserved unconditionally, and the cost is `O(d)` (four port
    /// scans).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidMutation`] — leaving the graph
    /// untouched — if the four nodes are not pairwise distinct, either
    /// removed edge is absent, or either added edge already exists
    /// (which would create a parallel edge).
    pub fn apply_swap(
        &mut self,
        a: NodeId,
        b: NodeId,
        c: NodeId,
        d: NodeId,
    ) -> Result<(), GraphError> {
        for &u in &[a, b, c, d] {
            self.check_node(u)?;
        }
        if a == b || a == c || a == d || b == c || b == d || c == d {
            return Err(GraphError::InvalidMutation {
                reason: format!("swap endpoints {a}, {b}, {c}, {d} must be pairwise distinct"),
            });
        }
        let find = |g: &RegularGraph, u: NodeId, v: NodeId| {
            g.neighbors(u)
                .iter()
                .position(|&w| w as usize == v)
                .ok_or_else(|| GraphError::InvalidMutation {
                    reason: format!("swap requires edge ({u}, {v}), which is absent"),
                })
        };
        let p_ab = find(self, a, b)?;
        let p_ba = find(self, b, a)?;
        let p_cd = find(self, c, d)?;
        let p_dc = find(self, d, c)?;
        if self.has_edge(a, c) || self.has_edge(b, d) {
            return Err(GraphError::InvalidMutation {
                reason: format!("swap would duplicate an existing edge ({a}, {c}) or ({b}, {d})"),
            });
        }
        let deg = self.degree();
        let adjacency = self.adjacency_mut();
        adjacency[a * deg + p_ab] = c as u32;
        adjacency[c * deg + p_cd] = a as u32;
        adjacency[b * deg + p_ba] = d as u32;
        adjacency[d * deg + p_dc] = b as u32;
        Ok(())
    }

    /// Renumbers `node`'s original ports in place: new port `i`
    /// addresses the neighbour previously behind port `perm[i]`. No
    /// edge changes, so every structural invariant is preserved; only
    /// port-addressed state (rotor sequences keyed on port indices)
    /// feels the churn. `O(d)`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidMutation`] if `perm` is not a
    /// permutation of `0..d`, leaving the graph untouched.
    pub fn apply_port_permutation(&mut self, node: NodeId, perm: &[u16]) -> Result<(), GraphError> {
        self.check_node(node)?;
        let d = self.degree();
        if perm.len() != d {
            return Err(GraphError::InvalidMutation {
                reason: format!(
                    "port permutation has {} entries, expected d = {d}",
                    perm.len()
                ),
            });
        }
        let mut seen = vec![false; d];
        for &p in perm {
            let p = p as usize;
            if p >= d || seen[p] {
                return Err(GraphError::InvalidMutation {
                    reason: format!("port permutation is not a permutation of 0..{d}"),
                });
            }
            seen[p] = true;
        }
        let old: Vec<u32> = self.neighbors(node).to_vec();
        let adjacency = self.adjacency_mut();
        for (i, &p) in perm.iter().enumerate() {
            adjacency[node * d + i] = old[p as usize];
        }
        Ok(())
    }

    /// Marks `node` asleep (failed). `O(asleep)` list insertion; no
    /// edge changes. The load consequence — the node's queue draining
    /// to live neighbours each round — is the engine's job, via
    /// [`handoff_deltas`].
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidMutation`] if the node is already
    /// asleep (a schedule bug the engine surfaces rather than masks).
    pub fn apply_sleep(&mut self, node: NodeId) -> Result<(), GraphError> {
        self.check_node(node)?;
        let asleep = self.asleep_mut();
        match asleep.binary_search(&(node as u32)) {
            Ok(_) => Err(GraphError::InvalidMutation {
                reason: format!("node {node} is already asleep"),
            }),
            Err(at) => {
                asleep.insert(at, node as u32);
                Ok(())
            }
        }
    }

    /// Marks an asleep node awake again. `O(asleep)`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidMutation`] if the node is not
    /// asleep.
    pub fn apply_wake(&mut self, node: NodeId) -> Result<(), GraphError> {
        self.check_node(node)?;
        let asleep = self.asleep_mut();
        match asleep.binary_search(&(node as u32)) {
            Ok(at) => {
                asleep.remove(at);
                Ok(())
            }
            Err(_) => Err(GraphError::InvalidMutation {
                reason: format!("node {node} is not asleep"),
            }),
        }
    }

    /// Dispatches one [`TopologyEvent`] to the matching `apply_*`
    /// method. On error the graph is untouched.
    ///
    /// # Errors
    ///
    /// Propagates the event's validation error.
    pub fn apply_event(&mut self, event: &TopologyEvent) -> Result<(), GraphError> {
        match event {
            TopologyEvent::Swap { a, b, c, d } => self.apply_swap(*a, *b, *c, *d),
            TopologyEvent::PermutePorts { node, perm } => self.apply_port_permutation(*node, perm),
            TopologyEvent::Sleep { node } => self.apply_sleep(*node),
            TopologyEvent::Wake { node } => self.apply_wake(*node),
        }
    }
}

/// Accumulates the deterministic failure handoff into `deltas`: every
/// asleep node's positive effective load (`loads[u] + deltas[u]`, so
/// same-round injection is included) is split evenly over its awake
/// neighbours — each gets the floor share, the first `remainder` in
/// port order one extra — and deducted from the node. Asleep nodes are
/// processed in ascending id order; because handoffs only ever target
/// awake nodes, the result is independent of that order anyway.
///
/// `O(asleep · d)` — the cost model tracks the failed set, not `n`.
///
/// Nodes with nothing to give (effective load ≤ 0) and nodes whose
/// neighbours are all asleep are skipped: debt stays where it is, and a
/// fully isolated failure keeps its queue until a neighbour recovers —
/// and, because schemes are topology-oblivious and "asleep nodes never
/// plan" is enforced purely by this draining, an isolated failure
/// *keeps balancing* that retained queue (its rotor included) until
/// then; all execution paths agree on that corner bit for bit.
/// The handoff sums to zero, so token conservation is untouched.
pub fn handoff_deltas(graph: &RegularGraph, loads: &[i64], deltas: &mut [i64]) {
    debug_assert_eq!(loads.len(), graph.num_nodes());
    debug_assert_eq!(deltas.len(), graph.num_nodes());
    // The asleep list is read while only `deltas` is written, and
    // handoffs never target asleep nodes, so no entry is read after
    // being influenced by another handoff.
    for i in 0..graph.asleep_count() {
        let u = graph.asleep_nodes()[i] as usize;
        let x = loads[u] + deltas[u];
        if x <= 0 {
            continue;
        }
        let awake = graph
            .neighbors(u)
            .iter()
            .filter(|&&v| graph.is_awake(v as usize))
            .count() as i64;
        if awake == 0 {
            continue;
        }
        let share = x / awake;
        let remainder = (x % awake) as usize;
        let mut taken = 0usize;
        for &v in graph.neighbors(u) {
            let v = v as usize;
            if graph.is_awake(v) {
                deltas[v] += share + i64::from(taken < remainder);
                taken += 1;
            }
        }
        deltas[u] -= x;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn swap_rewires_exactly_four_slots_and_preserves_ports() {
        // C8: rewire {0,1} and {4,5} to {0,4}, {1,5}.
        let mut g = generators::cycle(8).unwrap();
        let before = g.clone();
        g.apply_swap(0, 1, 4, 5).unwrap();
        assert!(g.has_edge(0, 4) && g.has_edge(1, 5));
        assert!(!g.has_edge(0, 1) && !g.has_edge(4, 5));
        // Untouched ports unchanged; the rewired ports keep their index.
        assert_eq!(g.neighbors(0), &[4, 7], "port 0 of node 0 rewired in place");
        assert_eq!(g.neighbors(1), &[2, 5]);
        for u in [2usize, 3, 6, 7] {
            assert_eq!(g.neighbors(u), before.neighbors(u), "node {u} untouched");
        }
        // Still a valid regular graph.
        let flat: Vec<u32> = (0..8).flat_map(|u| g.neighbors(u).to_vec()).collect();
        assert!(RegularGraph::from_adjacency(8, 2, flat).is_ok());
    }

    #[test]
    fn swap_inverse_restores_bit_for_bit() {
        let mut g = generators::torus(2, 4).unwrap();
        let original = g.clone();
        let ev = TopologyEvent::Swap {
            a: 0,
            b: 1,
            c: 5,
            d: 6,
        };
        g.apply_event(&ev).unwrap();
        assert_ne!(g, original);
        g.apply_event(&ev.inverted()).unwrap();
        assert_eq!(g, original, "inverse swap must restore the exact slots");
    }

    #[test]
    fn swap_rejects_bad_inputs_and_leaves_graph_untouched() {
        let mut g = generators::cycle(8).unwrap();
        let original = g.clone();
        // Shared endpoint.
        assert!(g.apply_swap(0, 1, 1, 2).is_err());
        // Absent edge.
        assert!(g.apply_swap(0, 2, 4, 5).is_err());
        // Would duplicate an existing edge: {1,2} exists, swap of
        // {0,1},{2,3} adds {0,2} and {1,3}; pick one that collides.
        assert!(g.apply_swap(1, 0, 2, 3).is_err(), "{{1,2}} already exists");
        // Out of range.
        assert!(g.apply_swap(0, 1, 4, 99).is_err());
        assert_eq!(g, original, "rejected swaps must not mutate");
    }

    #[test]
    fn port_permutation_renumbers_without_changing_edges() {
        let mut g = generators::torus(2, 4).unwrap();
        let before: Vec<u32> = g.neighbors(0).to_vec();
        g.apply_port_permutation(0, &[3, 2, 1, 0]).unwrap();
        let after: Vec<u32> = g.neighbors(0).to_vec();
        assert_eq!(after, before.iter().rev().copied().collect::<Vec<_>>());
        // Edge set unchanged, symmetry intact.
        for &v in &before {
            assert!(g.has_edge(0, v as usize) && g.has_edge(v as usize, 0));
        }
        // Inverse restores.
        let ev = TopologyEvent::PermutePorts {
            node: 0,
            perm: vec![3, 2, 1, 0],
        };
        g.apply_event(&ev.inverted()).unwrap();
        assert_eq!(g.neighbors(0), before.as_slice());
    }

    #[test]
    fn port_permutation_rejects_non_permutations() {
        let mut g = generators::cycle(6).unwrap();
        assert!(g.apply_port_permutation(0, &[0, 0]).is_err());
        assert!(g.apply_port_permutation(0, &[0]).is_err());
        assert!(g.apply_port_permutation(0, &[0, 9]).is_err());
    }

    #[test]
    fn sleep_wake_bookkeeping() {
        let mut g = generators::cycle(6).unwrap();
        assert_eq!(g.asleep_count(), 0);
        assert!(g.is_awake(3));
        g.apply_sleep(3).unwrap();
        g.apply_sleep(1).unwrap();
        assert_eq!(g.asleep_nodes(), &[1, 3], "list stays sorted");
        assert!(!g.is_awake(3) && !g.is_awake(1) && g.is_awake(0));
        assert!(g.apply_sleep(3).is_err(), "double sleep is a schedule bug");
        g.apply_wake(3).unwrap();
        assert!(g.is_awake(3));
        assert!(g.apply_wake(3).is_err(), "double wake is a schedule bug");
        // Event inverses.
        let ev = TopologyEvent::Sleep { node: 1 };
        assert_eq!(ev.inverted(), TopologyEvent::Wake { node: 1 });
    }

    #[test]
    fn handoff_splits_load_evenly_over_awake_neighbors_in_port_order() {
        // Torus node 5 has neighbours [6, 4, 9, 1]; put 4 asleep too so
        // only three targets remain, and give 5 eleven tokens.
        let mut g = generators::torus(2, 4).unwrap();
        assert_eq!(g.neighbors(5), &[6, 4, 9, 1]);
        g.apply_sleep(4).unwrap();
        g.apply_sleep(5).unwrap();
        let mut loads = vec![0i64; 16];
        loads[5] = 11;
        let mut deltas = vec![0i64; 16];
        handoff_deltas(&g, &loads, &mut deltas);
        // 11 over 3 awake neighbours: 4, 4, 3 in port order (6, 9, 1).
        assert_eq!(deltas[5], -11);
        assert_eq!(deltas[6], 4);
        assert_eq!(deltas[9], 4);
        assert_eq!(deltas[1], 3);
        assert_eq!(deltas[4], 0, "asleep neighbour receives nothing");
        assert_eq!(deltas.iter().sum::<i64>(), 0, "handoff conserves tokens");
    }

    #[test]
    fn handoff_includes_same_round_injection_and_skips_debt() {
        let mut g = generators::cycle(6).unwrap();
        g.apply_sleep(2).unwrap();
        g.apply_sleep(4).unwrap();
        let loads = vec![0i64, 0, 3, 0, -5, 0];
        // Same-round injection of 5 onto node 2 joins the handoff.
        let mut deltas = vec![0i64; 6];
        deltas[2] = 5;
        handoff_deltas(&g, &loads, &mut deltas);
        assert_eq!(deltas[2], -3, "3 held + 5 injected, all forwarded");
        assert_eq!(deltas[1], 4);
        assert_eq!(deltas[3], 4);
        assert_eq!(deltas[4], 0, "negative load is debt, not handed off");
    }

    #[test]
    fn handoff_with_all_neighbors_asleep_keeps_the_queue() {
        let mut g = generators::cycle(6).unwrap();
        for u in [1usize, 2, 3] {
            g.apply_sleep(u).unwrap();
        }
        let loads = vec![0i64, 0, 7, 0, 0, 0];
        let mut deltas = vec![0i64; 6];
        handoff_deltas(&g, &loads, &mut deltas);
        assert_eq!(deltas[2], 0, "no live neighbour: queue stays put");
    }
}
