//! Locality-aware node relabeling: BFS and reverse-Cuthill–McKee
//! orderings, and isomorphic graph copies under a permutation.
//!
//! The schemes of the paper are label-free — a node's flows depend only
//! on its own load and ports — so any relabeling of the node ids yields
//! an isomorphic process: run the scheme on the relabeled graph with
//! permuted initial loads, map the final loads back, and the result is
//! **bit-identical** to the run on the original graph
//! (port numbering is preserved per node, see
//! [`RegularGraph::relabeled`]). The one caveat is scheme
//! configuration keyed on node ids: a rotor-router built from a
//! node-id-dependent port order (`PortOrder::Shuffled`/`PerNode`)
//! derives node `u`'s sequence from its *current* id, so it must be
//! configured in the relabeled id space to reproduce the original run;
//! id-independent orders (`Sequential`, `Interleaved`, `Uniform`)
//! commute unconditionally. What relabeling *does* change is
//! memory locality: the engine's hot loop walks nodes in id order and
//! scatters tokens to `neighbor(u, p)`, so a labeling that keeps
//! neighbours numerically close turns random-access scatters into
//! near-sequential ones. BFS/RCM orderings minimise (heuristically) the
//! [`bandwidth`] of the adjacency — the standard cure for
//! irregular-graph traversal, and the reason a random-regular graph
//! balances measurably faster after [`Relabeling::reverse_cuthill_mckee`].
//!
//! # Example
//!
//! ```
//! use dlb_graph::{generators, relabel::Relabeling};
//!
//! let g = generators::random_regular(64, 4, 7)?;
//! let r = Relabeling::reverse_cuthill_mckee(&g);
//! let h = g.relabeled(&r)?;
//! // Same graph up to renaming; results map back via the inverse.
//! assert_eq!(h.num_nodes(), g.num_nodes());
//! assert!(dlb_graph::relabel::bandwidth(&h) <= dlb_graph::relabel::bandwidth(&g));
//! # Ok::<(), dlb_graph::GraphError>(())
//! ```

use std::collections::{HashMap, VecDeque};

use crate::{GraphError, NodeId, RegularGraph};

/// A bijective renaming of the node ids `0..n`, stored in both
/// directions so loads and results can be mapped either way in `O(n)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relabeling {
    /// `forward[old] = new`.
    forward: Vec<u32>,
    /// `inverse[new] = old`.
    inverse: Vec<u32>,
}

impl Relabeling {
    /// The identity relabeling on `n` nodes.
    pub fn identity(n: usize) -> Self {
        let forward: Vec<u32> = (0..n as u32).collect();
        Relabeling {
            inverse: forward.clone(),
            forward,
        }
    }

    /// Wraps an explicit `old → new` map, validating that it is a
    /// permutation of `0..len`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidParameters`] if `forward` is not a
    /// permutation.
    pub fn from_forward(forward: Vec<u32>) -> Result<Self, GraphError> {
        let n = forward.len();
        let mut inverse = vec![u32::MAX; n];
        for (old, &new) in forward.iter().enumerate() {
            let new = new as usize;
            if new >= n || inverse[new] != u32::MAX {
                return Err(GraphError::InvalidParameters {
                    reason: format!("relabeling is not a permutation of 0..{n}"),
                });
            }
            inverse[new] = old as u32;
        }
        Ok(Relabeling { forward, inverse })
    }

    /// The breadth-first ordering from `start`: node ids are assigned
    /// in BFS visitation order (neighbours explored in port order), so
    /// every node lands numerically close to its BFS parent. Unreached
    /// components are traversed from their smallest old id in turn.
    ///
    /// # Panics
    ///
    /// Panics if `start` is out of range.
    pub fn bfs(graph: &RegularGraph, start: NodeId) -> Self {
        let order = bfs_order(graph, start);
        order_to_relabeling(order)
    }

    /// The reverse Cuthill–McKee ordering: a BFS from a
    /// pseudo-peripheral node (found by a double sweep), with the final
    /// visitation order reversed — the classic bandwidth-reduction
    /// heuristic. On a d-regular graph all degrees tie, so the
    /// degree-sorting of general RCM degenerates to port-order
    /// exploration, which keeps the construction deterministic.
    pub fn reverse_cuthill_mckee(graph: &RegularGraph) -> Self {
        // Double sweep: BFS from node 0, restart from a farthest node.
        let start = *bfs_order(graph, 0).last().expect("graphs are non-empty");
        let mut order = bfs_order(graph, start as NodeId);
        order.reverse();
        order_to_relabeling(order)
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.forward.len()
    }

    /// Whether the relabeling covers zero nodes (never true for
    /// relabelings built from a graph; provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.forward.is_empty()
    }

    /// The new id of old node `old`.
    #[inline]
    pub fn to_new(&self, old: NodeId) -> NodeId {
        self.forward[old] as NodeId
    }

    /// The old id of new node `new`.
    #[inline]
    pub fn to_original(&self, new: NodeId) -> NodeId {
        self.inverse[new] as NodeId
    }

    /// The full `old → new` map.
    pub fn forward(&self) -> &[u32] {
        &self.forward
    }

    /// The full `new → old` map.
    pub fn inverse(&self) -> &[u32] {
        &self.inverse
    }

    /// Reindexes a per-node vector from old ids to new ids (e.g. an
    /// initial load vector before running on the relabeled graph).
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` differs from the relabeling's length.
    pub fn permute<T: Copy>(&self, values: &[T]) -> Vec<T> {
        assert_eq!(values.len(), self.len(), "per-node vector length mismatch");
        self.inverse
            .iter()
            .map(|&old| values[old as usize])
            .collect()
    }

    /// Reindexes a per-node vector from new ids back to old ids (e.g.
    /// final loads, so results are reported in original ids).
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` differs from the relabeling's length.
    pub fn unpermute<T: Copy>(&self, values: &[T]) -> Vec<T> {
        assert_eq!(values.len(), self.len(), "per-node vector length mismatch");
        self.forward
            .iter()
            .map(|&new| values[new as usize])
            .collect()
    }
}

/// BFS visitation order over all components (restarting from the
/// smallest unvisited id), neighbours explored in port order.
fn bfs_order(graph: &RegularGraph, start: NodeId) -> Vec<u32> {
    assert!(start < graph.num_nodes(), "start out of range");
    let n = graph.num_nodes();
    let mut order = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    let mut queue = VecDeque::new();
    let mut next_root = 0usize;
    seen[start] = true;
    queue.push_back(start);
    while order.len() < n {
        while let Some(u) = queue.pop_front() {
            order.push(u as u32);
            for &v in graph.neighbors(u) {
                let v = v as usize;
                if !seen[v] {
                    seen[v] = true;
                    queue.push_back(v);
                }
            }
        }
        while next_root < n && seen[next_root] {
            next_root += 1;
        }
        if next_root < n {
            seen[next_root] = true;
            queue.push_back(next_root);
        }
    }
    order
}

/// Converts a visitation order (`order[new] = old`) into a relabeling.
fn order_to_relabeling(order: Vec<u32>) -> Relabeling {
    let mut forward = vec![0u32; order.len()];
    for (new, &old) in order.iter().enumerate() {
        forward[old as usize] = new as u32;
    }
    Relabeling {
        forward,
        inverse: order,
    }
}

/// The adjacency bandwidth `max_{(u,v) ∈ E} |u − v|`: the locality
/// metric BFS/RCM orderings heuristically minimise.
pub fn bandwidth(graph: &RegularGraph) -> usize {
    let mut worst = 0usize;
    for u in 0..graph.num_nodes() {
        for &v in graph.neighbors(u) {
            worst = worst.max(u.abs_diff(v as usize));
        }
    }
    worst
}

/// The per-port shift structure of a labeling: for each port `p`, the
/// dominant signed offset `o_p` (the most frequent value of
/// `neighbor(u, p) − u` over all nodes) together with the exact list of
/// nodes whose port-`p` neighbour deviates from it.
///
/// This is a sharper locality summary than [`bandwidth`]: the natural
/// labeling of a cycle has bandwidth `n − 1` (the wrap edge) yet is
/// perfectly banded — port 0 is offset `+1` for every node but the last,
/// port 1 is offset `−1` for every node but the first. A consumer that
/// applies each port as one shifted whole-array operation plus a
/// per-exception patch (the engine's banded vector kernel) therefore
/// keys off the *exception count*, not the worst-case edge span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortShiftProfile {
    /// `offsets[p]` is port `p`'s dominant offset: ties broken toward
    /// the smallest offset, so the profile is deterministic.
    pub offsets: Vec<i64>,
    /// `exceptions[p]` lists `(u, v)` with `v = neighbor(u, p)` for
    /// every node where `v − u ≠ offsets[p]`, in ascending node order.
    pub exceptions: Vec<Vec<(u32, u32)>>,
}

impl PortShiftProfile {
    /// Total exceptions across all ports — the cost of the patch pass.
    #[must_use]
    pub fn num_exceptions(&self) -> usize {
        self.exceptions.iter().map(Vec::len).sum()
    }
}

/// Computes the [`PortShiftProfile`] of a graph's current labeling in
/// `O(n·d)` time and `O(d + exceptions)` space beyond the counting
/// maps.
#[must_use]
pub fn port_shift_profile(graph: &RegularGraph) -> PortShiftProfile {
    let n = graph.num_nodes();
    let d = graph.degree();
    let mut offsets = Vec::with_capacity(d);
    let mut exceptions = Vec::with_capacity(d);
    for p in 0..d {
        let mut counts: HashMap<i64, u32> = HashMap::new();
        for u in 0..n {
            let o = graph.neighbor(u, p) as i64 - u as i64;
            *counts.entry(o).or_insert(0) += 1;
        }
        // Most frequent offset; ties toward the smallest offset keep
        // the profile independent of hash iteration order.
        let best = counts
            .iter()
            .map(|(&o, &c)| (c, std::cmp::Reverse(o)))
            .max()
            .map(|(_, std::cmp::Reverse(o))| o)
            .unwrap_or(0);
        let exc: Vec<(u32, u32)> = (0..n)
            .filter_map(|u| {
                let v = graph.neighbor(u, p);
                (v as i64 - u as i64 != best).then_some((u as u32, v as u32))
            })
            .collect();
        offsets.push(best);
        exceptions.push(exc);
    }
    PortShiftProfile {
        offsets,
        exceptions,
    }
}

impl RegularGraph {
    /// The isomorphic copy of this graph under `relabeling`: node `u`
    /// becomes `relabeling.to_new(u)`, and **port numbering is
    /// preserved** — port `p` of the new node leads to the renamed
    /// image of the node behind port `p` of the old node. Preserving
    /// ports makes every port-addressed scheme whose configuration does
    /// not key on node ids (SEND, rotor-router with a
    /// `Sequential`/`Interleaved`/`Uniform`
    /// [`PortOrder`](crate::PortOrder)) commute with the relabeling, so
    /// a run on the relabeled graph with
    /// [permuted](Relabeling::permute) loads,
    /// [mapped back](Relabeling::unpermute), is bit-identical to the
    /// original run. Node-id-keyed orders (`Shuffled`, `PerNode`)
    /// derive a node's sequence from its current id and must be
    /// configured in the relabeled id space.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidParameters`] if the relabeling's
    /// length differs from the node count.
    pub fn relabeled(&self, relabeling: &Relabeling) -> Result<RegularGraph, GraphError> {
        let n = self.num_nodes();
        let d = self.degree();
        if relabeling.len() != n {
            return Err(GraphError::InvalidParameters {
                reason: format!(
                    "relabeling covers {} nodes, graph has {n}",
                    relabeling.len()
                ),
            });
        }
        let mut adjacency = vec![0u32; n * d];
        for new in 0..n {
            let old = relabeling.to_original(new);
            for (p, &v) in self.neighbors(old).iter().enumerate() {
                adjacency[new * d + p] = relabeling.forward[v as usize];
            }
        }
        // An isomorphism preserves every structural invariant, but the
        // cheap revalidation keeps `RegularGraph`'s construction-time
        // guarantee unconditional.
        let mut relabeled = RegularGraph::from_adjacency(n, d, adjacency)?;
        // Sleep state travels with the nodes: the image of an asleep
        // node is asleep.
        let mut asleep: Vec<u32> = self
            .asleep_nodes()
            .iter()
            .map(|&old| relabeling.forward[old as usize])
            .collect();
        asleep.sort_unstable();
        *relabeled.asleep_mut() = asleep;
        Ok(relabeled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn identity_roundtrips() {
        let r = Relabeling::identity(5);
        assert_eq!(r.len(), 5);
        assert_eq!(r.to_new(3), 3);
        assert_eq!(r.to_original(3), 3);
        assert_eq!(r.permute(&[10, 11, 12, 13, 14]), vec![10, 11, 12, 13, 14]);
    }

    #[test]
    fn from_forward_validates() {
        assert!(Relabeling::from_forward(vec![2, 0, 1]).is_ok());
        assert!(Relabeling::from_forward(vec![0, 0, 1]).is_err());
        assert!(Relabeling::from_forward(vec![0, 1, 3]).is_err());
    }

    #[test]
    fn permute_and_unpermute_are_inverse() {
        let r = Relabeling::from_forward(vec![2, 0, 3, 1]).unwrap();
        let values = [10i64, 20, 30, 40];
        let permuted = r.permute(&values);
        // new id 0 holds old node 1's value, etc.
        assert_eq!(permuted, vec![20, 40, 10, 30]);
        assert_eq!(r.unpermute(&permuted), values.to_vec());
        for old in 0..4 {
            assert_eq!(r.to_original(r.to_new(old)), old);
        }
    }

    #[test]
    fn bfs_order_is_a_permutation_and_starts_at_start() {
        let g = generators::random_regular(30, 3, 5).unwrap();
        let r = Relabeling::bfs(&g, 7);
        assert_eq!(r.to_new(7), 0, "start gets new id 0");
        let mut seen = r.forward().to_vec();
        seen.sort_unstable();
        let expect: Vec<u32> = (0..30).collect();
        assert_eq!(seen, expect);
    }

    #[test]
    fn rcm_reduces_bandwidth_on_random_regular() {
        let g = generators::random_regular(256, 4, 42).unwrap();
        let r = Relabeling::reverse_cuthill_mckee(&g);
        let h = g.relabeled(&r).unwrap();
        assert!(
            bandwidth(&h) < bandwidth(&g),
            "RCM bandwidth {} not below original {}",
            bandwidth(&h),
            bandwidth(&g)
        );
    }

    #[test]
    fn relabeled_preserves_structure_and_ports() {
        let g = generators::torus(2, 4).unwrap();
        let r = Relabeling::reverse_cuthill_mckee(&g);
        let h = g.relabeled(&r).unwrap();
        assert_eq!(h.num_nodes(), g.num_nodes());
        assert_eq!(h.degree(), g.degree());
        for u in 0..g.num_nodes() {
            for p in 0..g.degree() {
                assert_eq!(
                    h.neighbor(r.to_new(u), p),
                    r.to_new(g.neighbor(u, p)),
                    "port {p} of node {u} broke under relabeling"
                );
            }
        }
    }

    #[test]
    fn relabeled_rejects_wrong_length() {
        let g = generators::cycle(8).unwrap();
        let r = Relabeling::identity(7);
        assert!(g.relabeled(&r).is_err());
    }

    #[test]
    fn port_shift_profile_sees_through_the_cycle_wrap_edge() {
        let g = generators::cycle(16).unwrap();
        let p = port_shift_profile(&g);
        assert_eq!(p.offsets, vec![1, -1]);
        // Exactly the two wrap edges deviate.
        assert_eq!(p.exceptions[0], vec![(15, 0)]);
        assert_eq!(p.exceptions[1], vec![(0, 15)]);
        assert_eq!(p.num_exceptions(), 2);
    }

    #[test]
    fn port_shift_profile_on_torus_uses_row_offsets() {
        let g = generators::torus(2, 8).unwrap();
        let p = port_shift_profile(&g);
        // Four ports: ±1 (row) and ±8 (column), each with O(side)
        // wrap exceptions.
        let mut offs = p.offsets.clone();
        offs.sort_unstable();
        assert_eq!(offs, vec![-8, -1, 1, 8]);
        assert_eq!(p.num_exceptions(), 4 * 8);
    }

    #[test]
    fn port_shift_profile_is_exact_on_scattered_graphs() {
        // On a random-regular graph the profile is still *correct* —
        // the dominant offset plus exceptions reconstructs every edge.
        let g = generators::random_regular(64, 4, 9).unwrap();
        let p = port_shift_profile(&g);
        for port in 0..4 {
            let exc: std::collections::HashMap<u32, u32> =
                p.exceptions[port].iter().copied().collect();
            for u in 0..64u32 {
                let expect = g.neighbor(u as usize, port) as u32;
                let got = exc
                    .get(&u)
                    .copied()
                    .unwrap_or((u as i64 + p.offsets[port]) as u32);
                assert_eq!(got, expect, "port {port} node {u}");
            }
        }
    }

    #[test]
    fn cycle_is_already_optimally_labeled() {
        // BFS from 0 on a cycle yields bandwidth ~2 (two frontier arms);
        // the generator's natural order has bandwidth n−1 (the wrap
        // edge). RCM must not make it worse than n−1.
        let g = generators::cycle(16).unwrap();
        assert_eq!(bandwidth(&g), 15);
        let r = Relabeling::reverse_cuthill_mckee(&g);
        let h = g.relabeled(&r).unwrap();
        assert!(bandwidth(&h) <= 2, "bandwidth {}", bandwidth(&h));
    }
}
