use std::error::Error;
use std::fmt;

/// Errors produced while constructing or validating graphs.
///
/// Every constructor in this crate validates its input eagerly; a
/// successfully constructed [`RegularGraph`](crate::RegularGraph) or
/// [`BalancingGraph`](crate::BalancingGraph) is guaranteed to satisfy the
/// structural invariants of the paper's model (symmetric, d-regular,
/// simple).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// The requested number of nodes is zero or otherwise unusable.
    EmptyGraph,
    /// A node index was out of range for the graph.
    NodeOutOfRange {
        /// The offending node index.
        node: usize,
        /// The number of nodes in the graph.
        n: usize,
    },
    /// A node's degree does not match the declared degree `d`.
    NotRegular {
        /// The node with the wrong degree.
        node: usize,
        /// The degree that node has.
        found: usize,
        /// The degree the graph declares.
        expected: usize,
    },
    /// The edge `(u, v)` is present but its reverse `(v, u)` is not.
    NotSymmetric {
        /// Tail of the unmatched directed edge.
        from: usize,
        /// Head of the unmatched directed edge.
        to: usize,
    },
    /// The original graph contains a self-loop or a repeated edge.
    ///
    /// The paper assumes the input graph `G` is simple (§1.3); self-loops
    /// enter only through the balancing graph `G⁺`.
    NotSimple {
        /// One endpoint of the repeated or degenerate edge.
        from: usize,
        /// The other endpoint.
        to: usize,
    },
    /// Parameters are structurally impossible (e.g. odd `n·d`, `d ≥ n`).
    InvalidParameters {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// A randomized generator exhausted its retry budget.
    GenerationFailed {
        /// Name of the generator that failed.
        generator: &'static str,
        /// Number of attempts performed before giving up.
        attempts: usize,
    },
    /// A topology mutation (double-edge swap, port permutation, node
    /// sleep/wake) was rejected because applying it would violate the
    /// graph's structural invariants or its sleep-state bookkeeping.
    /// Rejected mutations leave the graph untouched.
    InvalidMutation {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::EmptyGraph => write!(f, "graph must have at least one node"),
            GraphError::NodeOutOfRange { node, n } => {
                write!(f, "node index {node} out of range for graph with {n} nodes")
            }
            GraphError::NotRegular {
                node,
                found,
                expected,
            } => write!(
                f,
                "node {node} has degree {found}, expected regular degree {expected}"
            ),
            GraphError::NotSymmetric { from, to } => write!(
                f,
                "directed edge ({from}, {to}) has no reverse edge ({to}, {from})"
            ),
            GraphError::NotSimple { from, to } => {
                write!(f, "edge ({from}, {to}) makes the original graph non-simple")
            }
            GraphError::InvalidParameters { reason } => {
                write!(f, "invalid graph parameters: {reason}")
            }
            GraphError::GenerationFailed {
                generator,
                attempts,
            } => write!(
                f,
                "generator `{generator}` failed to produce a valid graph after {attempts} attempts"
            ),
            GraphError::InvalidMutation { reason } => {
                write!(f, "invalid topology mutation: {reason}")
            }
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let cases: Vec<(GraphError, &str)> = vec![
            (GraphError::EmptyGraph, "at least one node"),
            (
                GraphError::NodeOutOfRange { node: 7, n: 4 },
                "node index 7 out of range",
            ),
            (
                GraphError::NotRegular {
                    node: 1,
                    found: 3,
                    expected: 4,
                },
                "degree 3",
            ),
            (
                GraphError::NotSymmetric { from: 0, to: 2 },
                "no reverse edge",
            ),
            (GraphError::NotSimple { from: 5, to: 5 }, "non-simple"),
            (
                GraphError::InvalidParameters {
                    reason: "d must be < n".into(),
                },
                "d must be < n",
            ),
            (
                GraphError::GenerationFailed {
                    generator: "random_regular",
                    attempts: 100,
                },
                "random_regular",
            ),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(
                msg.contains(needle),
                "message {msg:?} should contain {needle:?}"
            );
            let first = msg.chars().next().unwrap();
            assert!(
                first.is_lowercase(),
                "message should start lowercase: {msg}"
            );
            assert!(!msg.ends_with('.'), "message should not end with a period");
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}
