//! Oracle property tests for [`dlb_graph::DynamicConnectivity`]: on
//! long random swap/sleep/wake sequences over all five graph families,
//! the incrementally maintained structure must agree with the
//! from-scratch BFS oracle [`traversal::is_connected`] after **every**
//! event and after **every** undo — including the apply-then-roll-back
//! probing the topology generators do on rejected candidates.

use dlb_graph::{generators, traversal, DynamicConnectivity, RegularGraph, TopologyEvent};
use proptest::prelude::*;

/// The five generator families at a parameterised size (`pick ∈ 0..5`),
/// mirroring the other property suites.
fn family_graph(pick: usize, size: usize, seed: u64) -> RegularGraph {
    match pick {
        0 => generators::cycle(4 + size).unwrap(),
        1 => generators::torus(2, 3 + size % 8).unwrap(),
        2 => generators::hypercube(2 + size % 6).unwrap(),
        3 => generators::clique_circulant(12 + 2 * (size % 12), 4).unwrap(),
        _ => {
            let n = 10 + 2 * (size % 40);
            generators::random_regular(n, 4, seed).unwrap()
        }
    }
}

/// A deterministic splitmix-style word stream for candidate draws
/// (proptest supplies the seed; the tape itself must be cheap).
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Draws one simple swap candidate against `g`; `None` if the draw is
/// rejected (the caller just draws again).
fn draw_candidate(g: &RegularGraph, state: &mut u64) -> Option<(usize, usize, usize, usize)> {
    let n = g.num_nodes();
    let deg = g.degree();
    let a = (mix(state) % n as u64) as usize;
    let b = g.neighbor(a, (mix(state) % deg as u64) as usize);
    let c = (mix(state) % n as u64) as usize;
    let d = g.neighbor(c, (mix(state) % deg as u64) as usize);
    let simple = a != c && a != d && b != c && b != d && !g.has_edge(a, c) && !g.has_edge(b, d);
    simple.then_some((a, b, c, d))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// After every applied event (swap, sleep, wake), every undone
    /// event, and every rejected-candidate rollback, the structure's
    /// `is_connected` equals the BFS oracle's answer on the mutated
    /// graph — on all five families.
    #[test]
    fn agrees_with_bfs_oracle_through_events_and_undos(
        pick in 0usize..5,
        size in 0usize..32,
        seed in 0u64..40,
        events in 20usize..60,
    ) {
        let mut g = family_graph(pick, size, seed);
        let mut dc = DynamicConnectivity::new(&g);
        prop_assert_eq!(dc.is_connected(), traversal::is_connected(&g));
        let mut state = seed ^ 0xabcd_ef01_2345_6789;
        let mut applied: Vec<TopologyEvent> = Vec::new();
        let mut emitted = 0usize;
        let mut draws = 0usize;
        while emitted < events && draws < events * 64 {
            draws += 1;
            match mix(&mut state) % 8 {
                // Mostly swaps; sleep/wake sprinkled in (they must be
                // connectivity no-ops on both sides of the oracle).
                0 => {
                    let node = (mix(&mut state) % g.num_nodes() as u64) as usize;
                    let ev = if g.is_awake(node) {
                        TopologyEvent::Sleep { node }
                    } else {
                        TopologyEvent::Wake { node }
                    };
                    g.apply_event(&ev).unwrap();
                    dc.apply_event(&ev);
                    applied.push(ev);
                }
                1..=5 => {
                    let Some((a, b, c, d)) = draw_candidate(&g, &mut state) else {
                        continue;
                    };
                    let ev = TopologyEvent::Swap { a, b, c, d };
                    g.apply_event(&ev).unwrap();
                    dc.apply_event(&ev);
                    applied.push(ev);
                }
                _ => {
                    // Rejected-candidate probing: apply a swap, check,
                    // roll it straight back — exactly the generators'
                    // validation pattern on a reject. The one-shot
                    // accept query must agree with the oracle on the
                    // post-swap graph even when the *current* graph is
                    // already disconnected mid-tape.
                    let Some((a, b, c, d)) = draw_candidate(&g, &mut state) else {
                        continue;
                    };
                    let accept_verdict = dc.would_leave_disconnected(a, b, c, d);
                    dc.apply_swap(a, b, c, d);
                    g.apply_swap(a, b, c, d).unwrap();
                    prop_assert_eq!(accept_verdict, !traversal::is_connected(&g));
                    prop_assert_eq!(dc.is_connected(), traversal::is_connected(&g));
                    dc.undo_swap(a, b, c, d);
                    g.apply_swap(a, c, b, d).unwrap();
                }
            }
            emitted += 1;
            prop_assert_eq!(
                dc.is_connected(),
                traversal::is_connected(&g),
                "divergence after event {} (family {}, size {})",
                emitted, pick, size
            );
        }
        // Unwind the whole tape; the structure must track every undo.
        for ev in applied.iter().rev() {
            g.apply_event(&ev.inverted()).unwrap();
            dc.undo_event(ev);
            prop_assert_eq!(dc.is_connected(), traversal::is_connected(&g));
        }
        prop_assert!(dc.is_connected() == traversal::is_connected(&g));
    }

    /// `would_disconnect` is a pure query: it answers exactly what the
    /// oracle says about the post-swap graph and leaves the structure's
    /// verdict on the *current* graph unchanged.
    #[test]
    fn would_disconnect_matches_oracle_and_is_pure(
        pick in 0usize..5,
        size in 0usize..32,
        seed in 0u64..40,
    ) {
        let mut g = family_graph(pick, size, seed);
        // `would_disconnect` reports a component-count increase; on an
        // already-split graph that is not the same thing as the
        // post-swap graph being disconnected.
        prop_assume!(traversal::is_connected(&g));
        let mut dc = DynamicConnectivity::new(&g);
        let mut state = seed ^ 0x5a5a_5a5a_5a5a_5a5a;
        let mut checked = 0usize;
        for _ in 0..512 {
            if checked >= 12 {
                break;
            }
            let Some((a, b, c, d)) = draw_candidate(&g, &mut state) else {
                continue;
            };
            checked += 1;
            let before = dc.is_connected();
            g.apply_swap(a, b, c, d).unwrap();
            let oracle = !traversal::is_connected(&g);
            g.apply_swap(a, c, b, d).unwrap();
            prop_assert_eq!(dc.would_disconnect(a, b, c, d), oracle);
            prop_assert_eq!(dc.is_connected(), before, "query must not mutate the verdict");
        }
    }
}
