//! Property tests for the graph substrate: every generator must emit
//! structurally valid graphs across its whole parameter range, and the
//! traversal/property algorithms must agree with closed forms.

use dlb_graph::relabel::{bandwidth, Relabeling};
use dlb_graph::{generators, properties, traversal, BalancingGraph, PortOrder, RegularGraph};
use proptest::prelude::*;

/// The five generator families at a parameterised size, for relabeling
/// properties (`pick ∈ 0..5`).
fn family_graph(pick: usize, size: usize, seed: u64) -> RegularGraph {
    match pick {
        0 => generators::cycle(4 + size).unwrap(),
        1 => generators::torus(2, 3 + size % 8).unwrap(),
        2 => generators::hypercube(2 + size % 6).unwrap(),
        3 => generators::clique_circulant(12 + 2 * (size % 12), 4).unwrap(),
        _ => {
            let n = 10 + 2 * (size % 40);
            generators::random_regular(n, 4, seed).unwrap()
        }
    }
}

proptest! {
    /// Reverse Cuthill–McKee must never make the adjacency bandwidth
    /// worse than the generator's own (identity) labeling, on any of
    /// the five graph families — the relabeling exists purely to buy
    /// locality, so a regression here is a real loss.
    #[test]
    fn rcm_never_increases_bandwidth_on_any_family(
        pick in 0usize..5,
        size in 0usize..48,
        seed in 0u64..50,
    ) {
        let g = family_graph(pick, size, seed);
        let identity = bandwidth(&g);
        let r = Relabeling::reverse_cuthill_mckee(&g);
        let h = g.relabeled(&r).unwrap();
        prop_assert!(
            bandwidth(&h) <= identity,
            "RCM raised bandwidth {} -> {} (family {}, size {}, seed {})",
            identity, bandwidth(&h), pick, size, seed
        );
    }

    /// `relabeled` composed with the inverse map is the identity:
    /// per-node data round-trips exactly through permute/unpermute, and
    /// relabeling by the inverse permutation restores the original
    /// adjacency (ports included).
    #[test]
    fn relabeling_round_trips_adjacency_and_data(
        pick in 0usize..5,
        size in 0usize..48,
        seed in 0u64..50,
    ) {
        let g = family_graph(pick, size, seed);
        let r = Relabeling::reverse_cuthill_mckee(&g);
        let h = g.relabeled(&r).unwrap();
        let back = Relabeling::from_forward(r.inverse().to_vec()).unwrap();
        let g2 = h.relabeled(&back).unwrap();
        for u in 0..g.num_nodes() {
            prop_assert_eq!(g2.neighbors(u), g.neighbors(u), "node {} changed", u);
        }
        let data: Vec<i64> = (0..g.num_nodes() as i64).map(|i| 3 * i - 7).collect();
        prop_assert_eq!(r.unpermute(&r.permute(&data)), data);
    }
}

proptest! {
    #[test]
    fn cycles_are_valid_and_have_known_shape(n in 3usize..200) {
        let g = generators::cycle(n).unwrap();
        prop_assert_eq!(g.num_nodes(), n);
        prop_assert_eq!(g.degree(), 2);
        prop_assert_eq!(g.num_edges(), n);
        prop_assert_eq!(traversal::diameter(&g), Some((n / 2) as u32));
        prop_assert_eq!(properties::is_bipartite(&g), n % 2 == 0);
        if n % 2 == 1 {
            prop_assert_eq!(properties::odd_girth(&g), Some(n as u32));
        }
    }

    #[test]
    fn circulants_are_symmetric_and_vertex_transitive_in_degree(
        n in 7usize..120,
        o2 in 2usize..3,
    ) {
        let g = generators::circulant(n, &[1, o2]).unwrap();
        prop_assert_eq!(g.degree(), 4);
        for (u, _, v) in g.directed_edges() {
            prop_assert!(g.has_edge(v, u), "missing reverse of ({u}, {v})");
        }
        prop_assert!(traversal::is_connected(&g));
    }

    #[test]
    fn random_regular_valid_across_degrees(
        n in 10usize..80,
        d in 3usize..9,
        seed in 0u64..50,
    ) {
        prop_assume!(n * d % 2 == 0 && d < n / 2);
        let g = generators::random_regular(n, d, seed).unwrap();
        prop_assert_eq!(g.degree(), d);
        prop_assert_eq!(g.num_edges(), n * d / 2);
        // from_adjacency validated symmetry/simplicity; spot-check the
        // reverse-port map is total.
        for (u, _, v) in g.directed_edges() {
            prop_assert!(g.reverse_port(u, v).is_some());
        }
    }

    #[test]
    fn bfs_distance_is_symmetric_on_random_graphs(
        n in 8usize..48,
        seed in 0u64..30,
    ) {
        let g = generators::random_regular(n, 4, seed).unwrap();
        let from0 = traversal::bfs_distances(&g, 0);
        #[allow(clippy::needless_range_loop)] // v is a node id, not a position
        for v in 1..n.min(6) {
            let fromv = traversal::bfs_distances(&g, v);
            prop_assert_eq!(from0[v], fromv[0], "d(0,{}) != d({},0)", v, v);
        }
    }

    #[test]
    fn all_port_orders_are_permutations(
        n in 4usize..40,
        d_self in 0usize..9,
        seed in 0u64..20,
    ) {
        let g = generators::cycle(n).unwrap();
        let gp = BalancingGraph::with_self_loops(g, d_self).unwrap();
        let d_plus = gp.degree_plus();
        for order in [
            PortOrder::Sequential,
            PortOrder::Interleaved,
            PortOrder::Shuffled { seed },
        ] {
            let seq = order.sequence_for(&gp, n / 2).unwrap();
            let mut sorted = seq.clone();
            sorted.sort_unstable();
            let expect: Vec<u16> = (0..d_plus as u16).collect();
            prop_assert_eq!(sorted, expect, "{:?}", order);
        }
    }

    #[test]
    fn torus_diameter_closed_form(r in 1usize..3, side in 3usize..8) {
        let g = generators::torus(r, side).unwrap();
        let expect = (r * (side / 2)) as u32;
        prop_assert_eq!(traversal::diameter(&g), Some(expect));
    }

    #[test]
    fn hypercube_distance_is_hamming(dim in 1usize..8) {
        let g = generators::hypercube(dim).unwrap();
        let dist = traversal::bfs_distances(&g, 0);
        for (u, &du) in dist.iter().enumerate() {
            prop_assert_eq!(du, (u as u32).count_ones(), "node {}", u);
        }
    }

    #[test]
    fn clique_circulant_has_the_clique(n_mult in 5usize..12, half in 2usize..6) {
        let d = 2 * half;
        let n = n_mult * d;
        let g = generators::clique_circulant(n, d).unwrap();
        // Nodes 0..half are pairwise adjacent (distance < half on the
        // ring in one direction or the other).
        for i in 0..half {
            for j in 0..half {
                if i != j {
                    prop_assert!(g.has_edge(i, j), "({},{}) missing, d = {}", i, j, d);
                }
            }
        }
    }

    #[test]
    fn eccentricity_bounded_by_diameter(n in 6usize..40, seed in 0u64..20) {
        let g = generators::random_regular(n, 4, seed).unwrap();
        let diam = traversal::diameter(&g).unwrap();
        for u in 0..n.min(8) {
            let ecc = traversal::eccentricity(&g, u).unwrap();
            prop_assert!(ecc <= diam);
            prop_assert!(2 * ecc >= diam, "eccentricity at least half diameter");
        }
    }
}
