//! The scenario runner: workload × scheme × graph, measured.
//!
//! A [`Scenario`] drives a balancer through two phases and reports the
//! quantities the dynamic-network literature states its results in:
//!
//! 1. **injection phase** (`rounds` rounds): the workload injects every
//!    round while the scheme balances. Over the trailing
//!    [`tail_window`](Scenario::tail_window) rounds — after the system
//!    has had time to reach its operating point — the runner records
//!    the **steady-state discrepancy** (max and mean), the open-system
//!    analogue of the paper's fixed-load discrepancy bounds. The
//!    **peak load** and **peak discrepancy** over the whole phase
//!    capture the worst transient.
//! 2. **recovery phase** (closed system, up to
//!    [`recovery_max_rounds`](Scenario::recovery_max_rounds)): the
//!    workload stops and the runner counts the rounds until the
//!    discrepancy first drops to
//!    [`recovery_threshold`](Scenario::recovery_threshold) — the
//!    **time to recover** after a burst. `None` means the threshold was
//!    not reached within the budget (reported honestly, not an error).
//!
//! The runner uses the instrumented `step_with` path for the injection
//! phase (it reads per-round statistics anyway) and the engine's
//! incremental `run_until` for recovery.

use dlb_core::{
    Balancer, Engine, EngineError, EngineState, LoadVector, TopologySchedule, Workload,
};
use dlb_graph::BalancingGraph;

/// Reusable recording state for [`Scenario`] runs: the per-round
/// discrepancy trace is written into a buffer that persists across
/// runs, so a sweep over hundreds of scenario cells allocates it once
/// instead of growing a fresh vector every run (and, within a run,
/// `reserve` up front instead of reallocating round by round).
#[derive(Debug, Default)]
pub struct ScenarioRecorder {
    trace: Vec<i64>,
}

impl ScenarioRecorder {
    /// An empty recorder; buffers grow on first use and are reused
    /// afterwards.
    #[must_use]
    pub fn new() -> Self {
        ScenarioRecorder::default()
    }

    /// The last run's per-round discrepancy trace (injection phase
    /// only, one entry per round).
    pub fn trace(&self) -> &[i64] {
        &self.trace
    }
}

/// Parameters of one scenario run (see the module docs for the phase
/// structure).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scenario {
    /// Injection-phase length in rounds.
    pub rounds: usize,
    /// Trailing window of the injection phase over which the
    /// steady-state discrepancy is taken.
    pub tail_window: usize,
    /// Closed-system round budget for the recovery phase.
    pub recovery_max_rounds: usize,
    /// Discrepancy at or below which the system counts as recovered.
    pub recovery_threshold: i64,
}

impl Scenario {
    /// A scenario with `rounds` injection rounds, a tail window of a
    /// quarter of them, a recovery budget of `4 × rounds`, and a
    /// recovery threshold of `2 d⁺` — callers tune the fields directly
    /// for anything else.
    pub fn new(rounds: usize, gp: &BalancingGraph) -> Self {
        Scenario {
            rounds,
            tail_window: (rounds / 4).max(1),
            recovery_max_rounds: rounds * 4,
            recovery_threshold: 2 * gp.degree_plus() as i64,
        }
    }

    /// Runs the scenario: `balancer` against `workload` on `gp` from
    /// `initial`.
    ///
    /// # Errors
    ///
    /// Propagates the first [`EngineError`] — an unclamped drain under
    /// a non-overdrawing scheme, for instance, is an error by design.
    pub fn run(
        &self,
        gp: &BalancingGraph,
        initial: &LoadVector,
        balancer: &mut dyn Balancer,
        workload: &mut dyn Workload,
    ) -> Result<ScenarioReport, EngineError> {
        let mut recorder = ScenarioRecorder::new();
        self.run_dyn(gp, initial, balancer, None, workload, &mut recorder)
    }

    /// [`run`](Scenario::run) under topology churn: `schedule`'s
    /// events mutate the graph every injection round (the engine's
    /// full dynamic round structure), so the steady-state numbers
    /// describe balancing *while the graph changes*. The recovery
    /// phase is run closed — churn and injection both stop — so the
    /// recovery time isolates how long the scheme needs to digest what
    /// the churn left behind (asleep nodes keep handing their queues
    /// to live neighbours during recovery). `recorder` buffers are
    /// reused across calls; the per-round discrepancy trace of this
    /// run is left in it.
    ///
    /// # Errors
    ///
    /// Propagates the first [`EngineError`], including
    /// `EngineError::Topology` for schedules that emit invalid events.
    pub fn run_dyn<'s>(
        &self,
        gp: &BalancingGraph,
        initial: &LoadVector,
        balancer: &mut dyn Balancer,
        schedule: Option<&mut (dyn TopologySchedule + 's)>,
        workload: &mut dyn Workload,
        recorder: &mut ScenarioRecorder,
    ) -> Result<ScenarioReport, EngineError> {
        self.resume_dyn(
            ScenarioCheckpoint::start(gp, initial),
            balancer,
            schedule,
            workload,
            recorder,
        )
    }

    /// Runs the injection phase from `checkpoint` up to (and
    /// including) round `through_round` — clamped to
    /// [`rounds`](Scenario::rounds) — and returns the advanced
    /// checkpoint without entering the recovery phase. This is the
    /// snapshot hook: capture the returned checkpoint (plus the
    /// balancer's and generators' own cursors, which travel
    /// separately) and hand it to [`resume_dyn`](Scenario::resume_dyn)
    /// later, in another process, or not at all.
    ///
    /// # Errors
    ///
    /// Propagates the first [`EngineError`].
    pub fn advance_dyn<'s>(
        &self,
        checkpoint: ScenarioCheckpoint,
        balancer: &mut dyn Balancer,
        schedule: Option<&mut (dyn TopologySchedule + 's)>,
        workload: &mut dyn Workload,
        through_round: usize,
    ) -> Result<ScenarioCheckpoint, EngineError> {
        let ScenarioCheckpoint {
            engine: state,
            mut stats,
        } = checkpoint;
        let mut engine = Engine::from_state(state);
        self.inject_until(
            &mut engine,
            InjectionSink {
                stats: &mut stats,
                trace: None,
            },
            balancer,
            schedule,
            workload,
            through_round.min(self.rounds),
        )?;
        Ok(ScenarioCheckpoint {
            engine: engine.export_state(),
            stats,
        })
    }

    /// Finishes a scenario from `checkpoint`: the remaining injection
    /// rounds, then the recovery phase. The resulting report is
    /// field-identical to an uninterrupted [`run_dyn`](Scenario::run_dyn)
    /// — in particular `recovery_rounds` is still measured from the
    /// injection-stop round, because the restored engine's step cursor
    /// keeps the absolute round numbering. `recorder` holds the
    /// post-resume part of the discrepancy trace only (the pre-split
    /// part was recorded by whoever ran the earlier rounds).
    ///
    /// The scheme's own state (rotor positions) and the generators'
    /// cursors are deliberately *not* part of the checkpoint; callers
    /// restore those through
    /// [`RotorRouter::with_initial_rotors`](dlb_core::schemes::RotorRouter::with_initial_rotors)-style
    /// constructors and [`Workload::restore_cursor`] /
    /// [`TopologySchedule::restore_cursor`].
    ///
    /// # Errors
    ///
    /// Propagates the first [`EngineError`].
    pub fn resume_dyn<'s>(
        &self,
        checkpoint: ScenarioCheckpoint,
        balancer: &mut dyn Balancer,
        schedule: Option<&mut (dyn TopologySchedule + 's)>,
        workload: &mut dyn Workload,
        recorder: &mut ScenarioRecorder,
    ) -> Result<ScenarioReport, EngineError> {
        let ScenarioCheckpoint {
            engine: state,
            mut stats,
        } = checkpoint;
        let mut engine = Engine::from_state(state);
        recorder.trace.clear();
        recorder
            .trace
            .reserve(self.rounds.saturating_sub(engine.step_count()));
        self.inject_until(
            &mut engine,
            InjectionSink {
                stats: &mut stats,
                trace: Some(&mut recorder.trace),
            },
            balancer,
            schedule,
            workload,
            self.rounds,
        )?;

        let loads_after_injection = engine.loads().clone();
        let injected_total = engine.injected_total();
        let topology_events = engine.topology_events_applied();

        // Recovery: the workload stops; count closed-system rounds to
        // the threshold. A system already at the threshold when
        // injection ends has genuinely recovered in zero rounds —
        // checked before stepping, since `run_until` evaluates its
        // predicate only *after* each round. Otherwise `run_until`
        // serves the predicate from the incremental discrepancy
        // tracker, so a long recovery does not pay a scan per round.
        let recovery_rounds = if loads_after_injection.discrepancy() <= self.recovery_threshold {
            Some(0)
        } else {
            engine
                .run_until(balancer, self.recovery_max_rounds, |s| {
                    s.discrepancy <= self.recovery_threshold
                })?
                .map(|step| step - self.rounds)
        };

        Ok(ScenarioReport {
            rounds: self.rounds,
            steady_discrepancy_max: stats.tail_max,
            steady_discrepancy_mean: stats.tail_sum as f64 / stats.tail_rounds.max(1) as f64,
            peak_load: stats.peak_load,
            peak_discrepancy: stats.peak_discrepancy,
            recovery_rounds,
            injected_total,
            topology_events,
            final_total: engine.loads().total(),
            final_discrepancy: engine.loads().discrepancy(),
            loads_after_injection,
        })
    }

    /// The shared injection loop: steps `engine` until `upto` rounds
    /// have completed, folding per-round statistics into `stats` (and
    /// the discrepancy trace into `trace`, when recording). The round
    /// counter *is* the engine's step cursor, so a restored engine
    /// continues with the absolute round numbering — tail-window
    /// membership and schedule/workload phase structure are unaffected
    /// by where the run was split.
    fn inject_until<'s>(
        &self,
        engine: &mut Engine,
        sink: InjectionSink<'_>,
        balancer: &mut dyn Balancer,
        mut schedule: Option<&mut (dyn TopologySchedule + 's)>,
        workload: &mut dyn Workload,
        upto: usize,
    ) -> Result<(), EngineError> {
        let InjectionSink { stats, mut trace } = sink;
        let tail_start = self.rounds.saturating_sub(self.tail_window);
        while engine.step_count() < upto {
            let round = engine.step_count();
            let s = schedule.as_deref_mut();
            let summary = engine.step_dyn(balancer, s, Some(workload))?;
            if let Some(t) = trace.as_deref_mut() {
                t.push(summary.discrepancy);
            }
            stats.peak_load = stats.peak_load.max(engine.loads().max());
            stats.peak_discrepancy = stats.peak_discrepancy.max(summary.discrepancy);
            if round >= tail_start {
                stats.tail_max = stats.tail_max.max(summary.discrepancy);
                stats.tail_sum += summary.discrepancy;
                stats.tail_rounds += 1;
            }
        }
        Ok(())
    }
}

/// Where [`Scenario::inject_until`] folds its per-round observations:
/// the running statistics, plus the discrepancy trace when recording.
struct InjectionSink<'a> {
    stats: &'a mut InjectionStats,
    trace: Option<&'a mut Vec<i64>>,
}

/// A mid-injection-phase [`Scenario`] snapshot: the engine's resumable
/// state plus the runner's accumulated statistics, so a run split at
/// any round boundary ([`Scenario::advance_dyn`] →
/// [`Scenario::resume_dyn`]) reports exactly what the uninterrupted
/// run would have — including when the split lands *inside* the tail
/// window, where partially accumulated tail statistics must cross the
/// checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioCheckpoint {
    /// Engine state after [`rounds_done`](ScenarioCheckpoint::rounds_done)
    /// completed injection rounds.
    pub engine: EngineState,
    /// The runner's accumulated per-round statistics.
    pub stats: InjectionStats,
}

impl ScenarioCheckpoint {
    /// The round-zero checkpoint: a fresh engine over `gp` with
    /// `initial` loads and statistics seeded from the initial vector.
    #[must_use]
    pub fn start(gp: &BalancingGraph, initial: &LoadVector) -> Self {
        let engine = Engine::new(gp.clone(), initial.clone());
        ScenarioCheckpoint {
            engine: engine.export_state(),
            stats: InjectionStats {
                peak_load: initial.max(),
                peak_discrepancy: initial.discrepancy(),
                tail_max: 0,
                tail_sum: 0,
                tail_rounds: 0,
            },
        }
    }

    /// Completed injection rounds (the engine's step cursor).
    #[must_use]
    pub fn rounds_done(&self) -> usize {
        self.engine.step
    }
}

/// The injection-phase accumulators a [`ScenarioCheckpoint`] carries.
/// Checkpoint payload, not live telemetry: the engine-side cumulative
/// counters behind these reach the dlb-obs MetricRegistry via the
/// engine's `fill_metrics`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectionStats {
    /// Highest single-node load seen at any round boundary so far.
    pub peak_load: i64,
    /// Highest discrepancy seen so far.
    pub peak_discrepancy: i64,
    /// Max discrepancy over the tail-window rounds completed so far.
    pub tail_max: i64,
    /// Discrepancy sum over the tail-window rounds completed so far.
    pub tail_sum: i64,
    /// Tail-window rounds completed so far.
    pub tail_rounds: u64,
}

/// What a [`Scenario`] run measured.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioReport {
    /// Injection rounds executed.
    pub rounds: usize,
    /// Max discrepancy over the tail window — the steady-state bound
    /// witnessed.
    pub steady_discrepancy_max: i64,
    /// Mean discrepancy over the tail window.
    pub steady_discrepancy_mean: f64,
    /// Highest single-node load seen at any round boundary.
    pub peak_load: i64,
    /// Highest discrepancy seen during the injection phase.
    pub peak_discrepancy: i64,
    /// Rounds from the end of injection to the recovery threshold
    /// (`None`: not reached within the budget).
    pub recovery_rounds: Option<usize>,
    /// Net injected load over the whole run.
    pub injected_total: i64,
    /// Topology events applied during the injection phase (always 0
    /// for static runs).
    pub topology_events: u64,
    /// Final total load (equals initial total + `injected_total`).
    pub final_total: i64,
    /// Final discrepancy after the recovery phase.
    pub final_discrepancy: i64,
    /// The load vector at the end of the injection phase (before
    /// recovery) — the reference the scenario harness checks the other
    /// execution paths against without replaying the instrumented run.
    pub loads_after_injection: LoadVector,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::{BurstyOnOff, Hotspot};
    use dlb_core::schemes::SendFloor;
    use dlb_graph::generators;

    fn lazy_cycle(n: usize) -> BalancingGraph {
        BalancingGraph::lazy(generators::cycle(n).unwrap())
    }

    #[test]
    fn scenario_conserves_and_recovers_from_a_burst() {
        let gp = lazy_cycle(16);
        let initial = LoadVector::uniform(16, 8);
        // A 20-round hotspot flood ends with the pile still on node 0
        // — injection stops with real imbalance in flight (uniform
        // arrivals would be smoothed as fast as they land).
        let mut scenario = Scenario::new(20, &gp);
        scenario.recovery_max_rounds = 20_000;
        let report = scenario
            .run(
                &gp,
                &initial,
                &mut SendFloor::new(),
                &mut Hotspot::new(0, 32),
            )
            .unwrap();
        assert_eq!(report.final_total, 128 + report.injected_total);
        assert!(report.peak_load >= 8);
        assert!(report.peak_discrepancy >= report.steady_discrepancy_max);
        let recovery = report.recovery_rounds.expect("cycle(16) recovers");
        assert!(recovery > 0, "burst must leave imbalance to recover from");
        assert!(report.final_discrepancy <= scenario.recovery_threshold);
    }

    #[test]
    fn already_balanced_at_injection_end_reports_zero_recovery() {
        let gp = lazy_cycle(16);
        let initial = LoadVector::uniform(16, 8);
        // 40 rounds end after a full 10-round off-phase: the burst has
        // been re-balanced before injection formally stops, so the true
        // time-to-recover is zero — and must be reported as 0, not 1.
        let mut scenario = Scenario::new(40, &gp);
        scenario.recovery_max_rounds = 20_000;
        let report = scenario
            .run(
                &gp,
                &initial,
                &mut SendFloor::new(),
                &mut BurstyOnOff::new(10, 10, 16, 7),
            )
            .unwrap();
        assert!(report.loads_after_injection.discrepancy() <= scenario.recovery_threshold);
        assert_eq!(report.recovery_rounds, Some(0));
    }

    #[test]
    fn run_dyn_measures_recovery_from_a_failure_burst() {
        use dlb_topology::schedules::FailureBurst;
        use dlb_topology::TopologySchedule;

        let gp = lazy_cycle(16);
        let initial = LoadVector::uniform(16, 32);
        // Four nodes fail at round 4 and recover at round 20; their
        // queues pile onto the survivors, so injection ends with churn
        // damage to digest.
        let mut scenario = Scenario::new(24, &gp);
        scenario.recovery_max_rounds = 20_000;
        let mut schedule = FailureBurst::new(4, 20, 4, 21);
        let mut recorder = ScenarioRecorder::new();
        let report = scenario
            .run_dyn(
                &gp,
                &initial,
                &mut SendFloor::new(),
                Some(&mut schedule as &mut dyn TopologySchedule),
                &mut Hotspot::new(0, 16),
                &mut recorder,
            )
            .unwrap();
        assert_eq!(report.topology_events, 8, "4 sleeps + 4 wakes");
        assert_eq!(report.final_total, 16 * 32 + report.injected_total);
        assert_eq!(recorder.trace().len(), 24, "one trace entry per round");
        assert!(report.recovery_rounds.is_some(), "cycle(16) recovers");
        // A second run reuses the recorder's buffer.
        let report2 = scenario
            .run_dyn(
                &gp,
                &initial,
                &mut SendFloor::new(),
                None,
                &mut Hotspot::new(0, 16),
                &mut recorder,
            )
            .unwrap();
        assert_eq!(report2.topology_events, 0);
        assert_eq!(recorder.trace().len(), 24);
    }

    /// The satellite anchor: a scenario snapshotted *inside* the tail
    /// window and resumed must report every field — tail max/mean,
    /// peaks, and recovery_rounds measured from the injection-stop
    /// round — identical to the uninterrupted run. Workload and churn
    /// state cross the split through their cursors.
    #[test]
    fn resume_inside_the_tail_window_yields_identical_report() {
        use dlb_topology::schedules::FailureBurst;

        let gp = lazy_cycle(16);
        let initial = LoadVector::uniform(16, 8);
        // rounds = 20 → tail_window 5, tail starts at round 15. The
        // burst wakes at round 19, *after* the split.
        let mut scenario = Scenario::new(20, &gp);
        scenario.recovery_max_rounds = 20_000;
        let make_workload = || BurstyOnOff::new(7, 3, 32, 9);
        let make_schedule = || FailureBurst::new(4, 19, 3, 21);

        let mut recorder = ScenarioRecorder::new();
        let mut schedule = make_schedule();
        let reference = scenario
            .run_dyn(
                &gp,
                &initial,
                &mut SendFloor::new(),
                Some(&mut schedule as &mut dyn TopologySchedule),
                &mut make_workload(),
                &mut recorder,
            )
            .unwrap();
        assert!(
            reference.recovery_rounds.unwrap_or(0) > 0,
            "the scenario must leave real recovery work: {reference:?}"
        );

        // Split at round 17: two tail rounds accumulated, three left.
        let mut workload = make_workload();
        let mut schedule = make_schedule();
        let checkpoint = scenario
            .advance_dyn(
                ScenarioCheckpoint::start(&gp, &initial),
                &mut SendFloor::new(),
                Some(&mut schedule as &mut dyn TopologySchedule),
                &mut workload,
                17,
            )
            .unwrap();
        assert_eq!(checkpoint.rounds_done(), 17);
        assert_eq!(checkpoint.stats.tail_rounds, 2, "split lands mid-tail");

        // Fresh same-spec generators restored from the cursors, as a
        // deserializing host would build them.
        let mut resumed_workload = make_workload();
        assert!(resumed_workload.restore_cursor(&workload.cursor()));
        let mut resumed_schedule = make_schedule();
        assert!(resumed_schedule.restore_cursor(&schedule.cursor()));
        let report = scenario
            .resume_dyn(
                checkpoint,
                &mut SendFloor::new(),
                Some(&mut resumed_schedule as &mut dyn TopologySchedule),
                &mut resumed_workload,
                &mut recorder,
            )
            .unwrap();
        assert_eq!(report, reference, "resumed report must be field-identical");
        assert_eq!(
            recorder.trace().len(),
            3,
            "resumed trace covers only the post-split rounds"
        );
    }

    #[test]
    fn hotspot_peaks_above_uniform() {
        let gp = lazy_cycle(8);
        let initial = LoadVector::uniform(8, 4);
        let scenario = Scenario {
            rounds: 12,
            tail_window: 3,
            recovery_max_rounds: 5_000,
            recovery_threshold: 8,
        };
        let report = scenario
            .run(
                &gp,
                &initial,
                &mut SendFloor::new(),
                &mut Hotspot::new(0, 20),
            )
            .unwrap();
        assert_eq!(report.injected_total, 12 * 20);
        assert!(report.peak_load > 4, "the flood must show in the peak");
    }
}
