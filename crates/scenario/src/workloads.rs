//! Concrete [`Workload`] generators.
//!
//! All generators are deterministic: randomized ones take explicit
//! seeds and draw from the vendored deterministic RNG, and every
//! generator's [`reset`](Workload::reset) restores the exact
//! post-construction state so one instance can replay its delta stream
//! — the property the differential tests and the scenario harness use
//! to drive every engine path with identical injection.

use dlb_core::Workload;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Steady Poisson-like arrivals: every round, `rate` tokens land on
/// independently uniform nodes (the discretised arrival stream of an
/// open queueing system; over many rounds each node receives a
/// binomially distributed — in the limit Poisson — share).
#[derive(Debug, Clone)]
pub struct SteadyArrivals {
    rate: u64,
    seed: u64,
    rng: StdRng,
}

impl SteadyArrivals {
    /// `rate` tokens per round, placement driven by `seed`.
    pub fn new(rate: u64, seed: u64) -> Self {
        SteadyArrivals {
            rate,
            seed,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Workload for SteadyArrivals {
    fn label(&self) -> String {
        format!("steady(+{}/round)", self.rate)
    }

    fn inject(&mut self, _round: usize, loads: &[i64], deltas: &mut [i64]) {
        let n = loads.len();
        for _ in 0..self.rate {
            deltas[self.rng.gen_range(0..n)] += 1;
        }
    }

    fn reset(&mut self) {
        self.rng = StdRng::seed_from_u64(self.seed);
    }

    // The RNG position is the only mutable state.
    fn cursor(&self) -> Vec<u64> {
        self.rng.state().to_vec()
    }

    fn restore_cursor(&mut self, cursor: &[u64]) -> bool {
        match <[u64; 4]>::try_from(cursor) {
            Ok(s) => {
                self.rng = StdRng::from_state(s);
                true
            }
            Err(_) => false,
        }
    }
}

/// Bursty on/off arrivals: `on` rounds of steady arrivals at `rate`
/// tokens/round, then `off` quiet rounds, repeating. The RNG advances
/// only during on-phases, so the phase structure — not wall-clock
/// round numbers — determines the stream.
#[derive(Debug, Clone)]
pub struct BurstyOnOff {
    on: usize,
    off: usize,
    rate: u64,
    seed: u64,
    rng: StdRng,
}

impl BurstyOnOff {
    /// `on` injecting rounds then `off` quiet rounds, repeating;
    /// `rate` tokens per injecting round.
    ///
    /// # Panics
    ///
    /// Panics if `on == 0` (the workload would never inject and the
    /// caller almost certainly meant [`crate::NoWorkload`]).
    pub fn new(on: usize, off: usize, rate: u64, seed: u64) -> Self {
        assert!(on > 0, "bursty workload needs a non-empty on-phase");
        BurstyOnOff {
            on,
            off,
            rate,
            seed,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Whether round `round` (1-based) falls in an on-phase.
    pub fn is_on(&self, round: usize) -> bool {
        (round - 1) % (self.on + self.off) < self.on
    }
}

impl Workload for BurstyOnOff {
    fn label(&self) -> String {
        format!("bursty({}on/{}off,+{})", self.on, self.off, self.rate)
    }

    fn inject(&mut self, round: usize, loads: &[i64], deltas: &mut [i64]) {
        if !self.is_on(round) {
            return;
        }
        let n = loads.len();
        for _ in 0..self.rate {
            deltas[self.rng.gen_range(0..n)] += 1;
        }
    }

    fn reset(&mut self) {
        self.rng = StdRng::seed_from_u64(self.seed);
    }

    // The phase is a pure function of the (engine-supplied) round
    // number, so the RNG position is again the whole cursor.
    fn cursor(&self) -> Vec<u64> {
        self.rng.state().to_vec()
    }

    fn restore_cursor(&mut self, cursor: &[u64]) -> bool {
        match <[u64; 4]>::try_from(cursor) {
            Ok(s) => {
                self.rng = StdRng::from_state(s);
                true
            }
            Err(_) => false,
        }
    }
}

/// Hotspot: floods one fixed node with `rate` tokens every round — the
/// worst spatial correlation an arrival process can have, and the
/// dynamic analogue of the paper's point-mass initial distribution.
#[derive(Debug, Clone, Copy)]
pub struct Hotspot {
    node: usize,
    rate: u64,
}

impl Hotspot {
    /// `rate` tokens per round, all on `node`.
    pub fn new(node: usize, rate: u64) -> Self {
        Hotspot { node, rate }
    }
}

impl Workload for Hotspot {
    fn label(&self) -> String {
        format!("hotspot(node {},+{}/round)", self.node, self.rate)
    }

    fn inject(&mut self, _round: usize, _loads: &[i64], deltas: &mut [i64]) {
        deltas[self.node] += self.rate as i64;
    }
}

/// Drain: designated sink nodes each consume up to `rate` tokens per
/// round (work leaving the system — completed requests, expiring
/// jobs). Clamped by default: a sink never removes more than the node
/// holds, so non-overdrawing schemes stay error-free.
/// [`Drain::unclamped`] removes exactly `rate` regardless — the
/// configuration the differential tests use to *provoke* the engines'
/// negative-load handling mid-run.
#[derive(Debug, Clone)]
pub struct Drain {
    sinks: Vec<usize>,
    rate: u64,
    clamped: bool,
}

impl Drain {
    /// Sinks each consuming up to `rate` tokens/round (clamped at the
    /// node's current non-negative load).
    pub fn new(sinks: Vec<usize>, rate: u64) -> Self {
        Drain {
            sinks,
            rate,
            clamped: true,
        }
    }

    /// Sinks each removing exactly `rate` tokens/round, even past
    /// zero — drives loads negative by design.
    pub fn unclamped(sinks: Vec<usize>, rate: u64) -> Self {
        Drain {
            sinks,
            rate,
            clamped: false,
        }
    }
}

impl Workload for Drain {
    fn label(&self) -> String {
        format!(
            "drain({} sinks,-{}/round{})",
            self.sinks.len(),
            self.rate,
            if self.clamped { "" } else { ",unclamped" }
        )
    }

    fn inject(&mut self, _round: usize, loads: &[i64], deltas: &mut [i64]) {
        for &s in &self.sinks {
            let take = if self.clamped {
                (self.rate as i64).min(loads[s].max(0))
            } else {
                self.rate as i64
            };
            deltas[s] -= take;
        }
    }
}

/// The bounded adversary of the dynamic-network model: each round it
/// spends its whole budget of `B` tokens on the currently most-loaded
/// node (ties to the lowest id), making the hottest spot hotter — the
/// placement that maximally fights the balancer while staying within
/// the `≤ B` tokens/round bound under which steady-state discrepancy
/// results are stated.
///
/// Argmax-aware: on the planned execution paths the engine maintains
/// an incremental load index and serves the `(argmax, max)` pair as a
/// hint, so the adversary injects without rescanning the load vector;
/// on the plan-free paths (no hint) it falls back to its own full
/// scan, counted in [`scans`](BoundedAdversary::scans) — the counter
/// the regression tests pin so the planned paths can never silently
/// regress to one `O(n)` scan per injecting round.
#[derive(Debug, Clone, Copy)]
pub struct BoundedAdversary {
    budget: u64,
    scans: u64,
}

impl BoundedAdversary {
    /// An adversary injecting `budget` tokens per round.
    pub fn new(budget: u64) -> Self {
        BoundedAdversary { budget, scans: 0 }
    }

    /// Full `O(n)` argmax scans this instance has performed (zero when
    /// every injection was served from the engine's hint).
    pub fn scans(&self) -> u64 {
        self.scans
    }

    /// The counted fallback scan: lowest id on ties, exactly the tie
    /// rule of the engine's index.
    fn scan_argmax(&mut self, loads: &[i64]) -> usize {
        self.scans += 1;
        let mut target = 0usize;
        for (u, &x) in loads.iter().enumerate() {
            if x > loads[target] {
                target = u;
            }
        }
        target
    }
}

impl Workload for BoundedAdversary {
    fn label(&self) -> String {
        format!("adversary(B={})", self.budget)
    }

    fn inject(&mut self, _round: usize, loads: &[i64], deltas: &mut [i64]) {
        let target = self.scan_argmax(loads);
        deltas[target] += self.budget as i64;
    }

    fn needs_argmax(&self) -> bool {
        true
    }

    fn inject_with_hint(
        &mut self,
        round: usize,
        loads: &[i64],
        argmax: Option<(usize, i64)>,
        deltas: &mut [i64],
    ) {
        match argmax {
            Some((target, _)) => deltas[target] += self.budget as i64,
            None => self.inject(round, loads, deltas),
        }
    }

    fn reset(&mut self) {
        self.scans = 0;
    }

    // The injection stream itself is a pure function of the loads; the
    // cursor only carries the fallback-scan tally so perf accounting
    // survives a checkpoint.
    fn cursor(&self) -> Vec<u64> {
        vec![self.scans]
    }

    fn restore_cursor(&mut self, cursor: &[u64]) -> bool {
        match cursor {
            [scans] => {
                self.scans = *scans;
                true
            }
            _ => false,
        }
    }
}

/// Sums the deltas of several workloads (arrivals plus drains gives a
/// flow-equilibrium scenario). Each child sees a private zeroed buffer,
/// so children that *set* rather than *add* entries still compose.
pub struct Compose {
    children: Vec<Box<dyn Workload>>,
    scratch: Vec<i64>,
}

impl Compose {
    /// Composes `children` by summing their per-round deltas.
    pub fn new(children: Vec<Box<dyn Workload>>) -> Self {
        Compose {
            children,
            scratch: Vec::new(),
        }
    }
}

impl Workload for Compose {
    fn label(&self) -> String {
        let parts: Vec<String> = self.children.iter().map(|c| c.label()).collect();
        format!("compose({})", parts.join(" + "))
    }

    fn inject(&mut self, round: usize, loads: &[i64], deltas: &mut [i64]) {
        self.inject_with_hint(round, loads, None, deltas);
    }

    /// A composition wants the argmax whenever any child does, and
    /// forwards the engine's hint — every child sees the same
    /// pre-round loads, so the same hint is valid for all of them. A
    /// composed `BoundedAdversary` therefore keeps the zero-scan
    /// guarantee of the planned paths.
    fn needs_argmax(&self) -> bool {
        self.children.iter().any(|c| c.needs_argmax())
    }

    fn inject_with_hint(
        &mut self,
        round: usize,
        loads: &[i64],
        argmax: Option<(usize, i64)>,
        deltas: &mut [i64],
    ) {
        self.scratch.resize(loads.len(), 0);
        for child in &mut self.children {
            self.scratch.fill(0);
            child.inject_with_hint(round, loads, argmax, &mut self.scratch);
            for (d, &s) in deltas.iter_mut().zip(&self.scratch) {
                *d += s;
            }
        }
    }

    fn reset(&mut self) {
        for child in &mut self.children {
            child.reset();
        }
    }

    // Length-prefixed per-child frames, so heterogeneous children
    // (including nested compositions) round-trip unambiguously.
    fn cursor(&self) -> Vec<u64> {
        let mut out = Vec::new();
        for child in &self.children {
            let frame = child.cursor();
            out.push(frame.len() as u64);
            out.extend(frame);
        }
        out
    }

    fn restore_cursor(&mut self, cursor: &[u64]) -> bool {
        let mut rest = cursor;
        let mut ok = true;
        for child in &mut self.children {
            let Some((&len, tail)) = rest.split_first() else {
                return false;
            };
            if tail.len() < len as usize {
                return false;
            }
            let (frame, next) = tail.split_at(len as usize);
            ok &= child.restore_cursor(frame);
            rest = next;
        }
        ok && rest.is_empty()
    }
}

/// A named workload configuration — the injection axis of every
/// scenario experiment, mirroring the harness's `SchemeSpec`/
/// `GraphSpec` pattern: a spec is `Clone + Eq`, builds a fresh
/// generator per engine path (identical streams), and labels JSON
/// rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadSpec {
    /// [`SteadyArrivals`].
    Steady {
        /// Tokens per round.
        rate: u64,
        /// Placement seed.
        seed: u64,
    },
    /// [`BurstyOnOff`].
    Bursty {
        /// Injecting rounds per period.
        on: usize,
        /// Quiet rounds per period.
        off: usize,
        /// Tokens per injecting round.
        rate: u64,
        /// Placement seed.
        seed: u64,
    },
    /// [`Hotspot`] on node 0.
    Hotspot {
        /// Tokens per round.
        rate: u64,
    },
    /// [`Drain`] (clamped) at every 8th node.
    Drain {
        /// Per-sink tokens removed per round.
        rate: u64,
    },
    /// [`Drain::unclamped`] at every 8th node — drives loads negative.
    DrainUnclamped {
        /// Per-sink tokens removed per round.
        rate: u64,
    },
    /// [`BoundedAdversary`].
    Adversary {
        /// Tokens per round, spent on the most-loaded node.
        budget: u64,
    },
    /// [`Compose`]: steady arrivals plus a clamped drain sized to
    /// absorb them — the flow-equilibrium scenario whose total load
    /// hovers around its initial value.
    ArriveAndDrain {
        /// Arrival tokens per round (drain capacity matches).
        rate: u64,
        /// Placement seed.
        seed: u64,
    },
}

impl WorkloadSpec {
    /// The sinks the drain-style specs use: every 8th node.
    fn sinks(n: usize) -> Vec<usize> {
        (0..n).step_by(8).collect()
    }

    /// Instantiates the workload for an `n`-node graph.
    pub fn build(&self, n: usize) -> Box<dyn Workload> {
        match *self {
            WorkloadSpec::Steady { rate, seed } => Box::new(SteadyArrivals::new(rate, seed)),
            WorkloadSpec::Bursty {
                on,
                off,
                rate,
                seed,
            } => Box::new(BurstyOnOff::new(on, off, rate, seed)),
            WorkloadSpec::Hotspot { rate } => Box::new(Hotspot::new(0, rate)),
            WorkloadSpec::Drain { rate } => Box::new(Drain::new(Self::sinks(n), rate)),
            WorkloadSpec::DrainUnclamped { rate } => {
                Box::new(Drain::unclamped(Self::sinks(n), rate))
            }
            WorkloadSpec::Adversary { budget } => Box::new(BoundedAdversary::new(budget)),
            WorkloadSpec::ArriveAndDrain { rate, seed } => {
                let sinks = Self::sinks(n);
                // Per-sink capacity sized so the sinks can absorb the
                // arrival rate once flow reaches them.
                let per_sink = (rate as usize).div_ceil(sinks.len()) as u64;
                Box::new(Compose::new(vec![
                    Box::new(SteadyArrivals::new(rate, seed)),
                    Box::new(Drain::new(sinks, per_sink)),
                ]))
            }
        }
    }

    /// A short label for tables and JSON rows.
    pub fn label(&self) -> String {
        match *self {
            WorkloadSpec::Steady { rate, .. } => format!("steady(+{rate})"),
            WorkloadSpec::Bursty { on, off, rate, .. } => format!("bursty({on}/{off},+{rate})"),
            WorkloadSpec::Hotspot { rate } => format!("hotspot(+{rate})"),
            WorkloadSpec::Drain { rate } => format!("drain(-{rate})"),
            WorkloadSpec::DrainUnclamped { rate } => format!("drain!(-{rate})"),
            WorkloadSpec::Adversary { budget } => format!("adversary(B={budget})"),
            WorkloadSpec::ArriveAndDrain { rate, .. } => format!("arrive+drain({rate})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(w: &mut dyn Workload, n: usize, rounds: usize) -> Vec<Vec<i64>> {
        let loads = vec![10i64; n];
        (1..=rounds)
            .map(|r| {
                let mut d = vec![0i64; n];
                w.inject(r, &loads, &mut d);
                d
            })
            .collect()
    }

    #[test]
    fn steady_injects_exactly_rate_and_replays_after_reset() {
        let mut w = SteadyArrivals::new(7, 3);
        let a = collect(&mut w, 16, 5);
        for d in &a {
            assert_eq!(d.iter().sum::<i64>(), 7);
            assert!(d.iter().all(|&x| x >= 0));
        }
        w.reset();
        assert_eq!(collect(&mut w, 16, 5), a, "reset must replay the stream");
    }

    #[test]
    fn bursty_respects_phases() {
        let mut w = BurstyOnOff::new(2, 3, 5, 1);
        let ds = collect(&mut w, 8, 10);
        let sums: Vec<i64> = ds.iter().map(|d| d.iter().sum()).collect();
        assert_eq!(sums, vec![5, 5, 0, 0, 0, 5, 5, 0, 0, 0]);
    }

    #[test]
    fn hotspot_targets_one_node() {
        let mut w = Hotspot::new(3, 9);
        let ds = collect(&mut w, 8, 2);
        assert_eq!(ds[0][3], 9);
        assert_eq!(ds[0].iter().sum::<i64>(), 9);
    }

    #[test]
    fn clamped_drain_never_overdraws() {
        let mut w = Drain::new(vec![0, 2], 7);
        let loads = vec![3i64, 10, 20, 0];
        let mut d = vec![0i64; 4];
        w.inject(1, &loads, &mut d);
        assert_eq!(d, vec![-3, 0, -7, 0], "sink 0 clamps at its load");
        // Unclamped removes the full rate regardless.
        let mut w = Drain::unclamped(vec![0], 7);
        let mut d = vec![0i64; 4];
        w.inject(1, &loads, &mut d);
        assert_eq!(d[0], -7);
    }

    #[test]
    fn clamped_drain_ignores_negative_loads() {
        let mut w = Drain::new(vec![0], 5);
        let loads = vec![-4i64, 1, 1, 1];
        let mut d = vec![0i64; 4];
        w.inject(1, &loads, &mut d);
        assert_eq!(d[0], 0, "nothing to take from a negative node");
    }

    #[test]
    fn adversary_floods_the_argmax_lowest_id_on_ties() {
        let mut w = BoundedAdversary::new(4);
        let loads = vec![1i64, 9, 9, 2];
        let mut d = vec![0i64; 4];
        w.inject(1, &loads, &mut d);
        assert_eq!(d, vec![0, 4, 0, 0]);
        assert_eq!(w.scans(), 1, "the fallback scan is counted");
        // A hint bypasses the scan entirely and must be trusted.
        let mut d = vec![0i64; 4];
        w.inject_with_hint(2, &loads, Some((1, 9)), &mut d);
        assert_eq!(d, vec![0, 4, 0, 0]);
        assert_eq!(w.scans(), 1, "hinted injection must not rescan");
        w.reset();
        assert_eq!(w.scans(), 0);
    }

    /// Regression (PR 5): the adversary used to rescan the full load
    /// vector for its argmax every injecting round on *every* path.
    /// The planned paths now serve it from the engine's incrementally
    /// maintained load index — zero adversary scans over an entire
    /// run — while the plan-free paths keep the (counted) fallback and
    /// still land on the identical target.
    #[test]
    fn adversary_scans_are_zero_on_the_planned_paths() {
        use dlb_core::schemes::SendFloor;
        use dlb_core::{Engine, LoadVector};
        use dlb_graph::{generators, BalancingGraph};

        let gp = BalancingGraph::lazy(generators::cycle(32).unwrap());
        let initial = LoadVector::point_mass(32, 320);

        let mut planned = BoundedAdversary::new(7);
        let mut engine = Engine::new(gp.clone(), initial.clone());
        engine
            .run_with(&mut SendFloor::new(), 60, Some(&mut planned))
            .unwrap();
        assert_eq!(
            planned.scans(),
            0,
            "planned paths must serve the argmax from the engine index"
        );
        let planned_loads = engine.loads().clone();

        let mut fallback = BoundedAdversary::new(7);
        let mut kernel = Engine::new(gp, initial);
        kernel
            .run_kernel_with(&mut SendFloor::new(), 60, Some(&mut fallback))
            .unwrap();
        assert_eq!(fallback.scans(), 60, "kernel path pays one scan per round");
        assert_eq!(
            kernel.loads(),
            &planned_loads,
            "hint and scan must pick identical targets"
        );
    }

    /// Regression (PR 5 review): `Compose` must forward the argmax
    /// capability and hint — a composed adversary keeps the planned
    /// paths' zero-scan guarantee instead of silently regressing to
    /// one full scan per injecting round.
    #[test]
    fn composed_adversary_keeps_the_zero_scan_guarantee() {
        use dlb_core::schemes::SendFloor;
        use dlb_core::{Engine, LoadVector};
        use dlb_graph::{generators, BalancingGraph};

        /// Panics if the engine ever injects it without a hint.
        struct DemandsHint;
        impl Workload for DemandsHint {
            fn label(&self) -> String {
                "demands-hint".into()
            }
            fn needs_argmax(&self) -> bool {
                true
            }
            fn inject(&mut self, _round: usize, _loads: &[i64], _deltas: &mut [i64]) {
                panic!("planned paths must serve composed children from the engine index");
            }
            fn inject_with_hint(
                &mut self,
                _round: usize,
                loads: &[i64],
                argmax: Option<(usize, i64)>,
                deltas: &mut [i64],
            ) {
                let (node, load) = argmax.expect("hint must be forwarded through Compose");
                assert_eq!(load, loads[node]);
                deltas[node] += 5;
            }
        }

        let mut composed = Compose::new(vec![
            Box::new(DemandsHint),
            Box::new(SteadyArrivals::new(3, 2)),
        ]);
        assert!(composed.needs_argmax(), "any argmax-hungry child suffices");
        let gp = BalancingGraph::lazy(generators::cycle(16).unwrap());
        let mut engine = Engine::new(gp, LoadVector::point_mass(16, 160));
        engine
            .run_with(&mut SendFloor::new(), 40, Some(&mut composed))
            .unwrap();
        assert_eq!(engine.injected_total(), 40 * (5 + 3));

        // At the trait level, a hint reaches each child verbatim.
        let mut compose = Compose::new(vec![Box::new(BoundedAdversary::new(5))]);
        let loads = vec![1i64, 9, 2, 2];
        let mut deltas = vec![0i64; 4];
        compose.inject_with_hint(1, &loads, Some((1, 9)), &mut deltas);
        assert_eq!(deltas, vec![0, 5, 0, 0], "hint forwarded to the child");
    }

    #[test]
    fn compose_sums_children() {
        let mut w = Compose::new(vec![
            Box::new(Hotspot::new(0, 3)),
            Box::new(Drain::new(vec![0, 1], 2)),
        ]);
        let loads = vec![10i64, 10];
        let mut d = vec![0i64; 2];
        w.inject(1, &loads, &mut d);
        assert_eq!(d, vec![1, -2]);
    }

    /// A fresh same-spec instance restored from a mid-stream cursor
    /// must continue the original's delta stream exactly — the
    /// checkpoint contract every snapshotting tenant relies on.
    #[test]
    fn cursors_resume_the_stream_mid_phase() {
        let check = |mut original: Box<dyn Workload>, mut fresh: Box<dyn Workload>| {
            let label = original.label();
            let _ = collect(original.as_mut(), 16, 7); // advance mid-stream
            let cursor = original.cursor();
            assert!(
                fresh.restore_cursor(&cursor),
                "{label}: cursor shape must match the spec-built instance"
            );
            // `collect` replays rounds 1..=5, but these generators'
            // streams depend on round numbers only through phase
            // structure; the adversary and drains are load-driven.
            let continued = collect(original.as_mut(), 16, 5);
            let restored = collect(fresh.as_mut(), 16, 5);
            assert_eq!(
                restored, continued,
                "{label}: stream diverged after restore"
            );
        };
        check(
            Box::new(SteadyArrivals::new(7, 3)),
            Box::new(SteadyArrivals::new(7, 3)),
        );
        check(
            Box::new(BurstyOnOff::new(3, 2, 5, 1)),
            Box::new(BurstyOnOff::new(3, 2, 5, 1)),
        );
        check(Box::new(Hotspot::new(2, 4)), Box::new(Hotspot::new(2, 4)));
        check(
            Box::new(Drain::new(vec![0, 8], 2)),
            Box::new(Drain::new(vec![0, 8], 2)),
        );
        let compose = || -> Box<dyn Workload> {
            Box::new(Compose::new(vec![
                Box::new(SteadyArrivals::new(4, 9)),
                Box::new(BoundedAdversary::new(3)),
            ]))
        };
        check(compose(), compose());
    }

    #[test]
    fn cursor_restores_reject_mismatched_shapes() {
        let mut w = SteadyArrivals::new(7, 3);
        assert!(!w.restore_cursor(&[1, 2, 3]), "wrong length");
        let mut a = BoundedAdversary::new(4);
        a.inject(1, &[3, 1], &mut [0, 0]);
        let cursor = a.cursor();
        assert_eq!(cursor, vec![1], "scan tally travels in the cursor");
        let mut fresh = BoundedAdversary::new(4);
        assert!(fresh.restore_cursor(&cursor));
        assert_eq!(fresh.scans(), 1);
        assert!(!fresh.restore_cursor(&[1, 2]), "wrong length");
        let mut c = Compose::new(vec![Box::new(SteadyArrivals::new(1, 1))]);
        assert!(!c.restore_cursor(&[9, 0, 0]), "frame longer than cursor");
        assert!(!c.restore_cursor(&[4, 0, 0, 0, 0, 7]), "trailing words");
    }

    #[test]
    fn specs_build_and_label() {
        let specs = [
            WorkloadSpec::Steady { rate: 4, seed: 1 },
            WorkloadSpec::Bursty {
                on: 2,
                off: 2,
                rate: 4,
                seed: 1,
            },
            WorkloadSpec::Hotspot { rate: 4 },
            WorkloadSpec::Drain { rate: 2 },
            WorkloadSpec::DrainUnclamped { rate: 2 },
            WorkloadSpec::Adversary { budget: 4 },
            WorkloadSpec::ArriveAndDrain { rate: 8, seed: 1 },
        ];
        for spec in &specs {
            let mut w = spec.build(32);
            assert!(!spec.label().is_empty());
            assert!(!w.label().is_empty());
            let loads = vec![5i64; 32];
            let mut d = vec![0i64; 32];
            w.inject(1, &loads, &mut d);
            w.reset();
        }
    }
}
