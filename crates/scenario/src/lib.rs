//! Dynamic-workload scenarios: the open-system regime the paper's
//! closed-system bounds do not cover.
//!
//! Theorems 2.3/4.1–4.3 bound the discrepancy of a **fixed** token
//! population; a production balancer instead serves live traffic —
//! load arrives and departs while balancing runs, the regime studied
//! for dynamic networks by Gilbert, Meir & Paz (arXiv:2105.13194),
//! where the object of interest becomes the *steady-state* discrepancy
//! under bounded adversarial injection. This crate expresses that
//! regime on top of the engine's injection hooks
//! ([`dlb_core::workload`]):
//!
//! * [`workloads`] — concrete deterministic [`Workload`] generators:
//!   steady Poisson-like arrivals ([`workloads::SteadyArrivals`]),
//!   bursty on/off phases ([`workloads::BurstyOnOff`]), a single-node
//!   flood ([`workloads::Hotspot`]), sink-node drains
//!   ([`workloads::Drain`]), a bounded adversary that floods the
//!   currently most-loaded node ([`workloads::BoundedAdversary`]), and
//!   a summing combinator ([`workloads::Compose`]); plus the
//!   [`WorkloadSpec`] naming layer experiments and tests build from.
//! * [`scenario`] — the [`Scenario`] runner composing
//!   workload × scheme × graph, recording steady-state discrepancy
//!   over the injection tail, peak load, and the time to recover the
//!   closed-system discrepancy after injection stops.
//!
//! Every generator is deterministic (explicit seeds, the vendored
//! deterministic RNG) and replayable via [`Workload::reset`], which is
//! what lets the scenario harness drive *every* engine execution path
//! (`step`/`run_fast`/`run_kernel`/`run_parallel`) with bit-identical
//! injection streams and assert bit-identical loads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod scenario;
pub mod workloads;

pub use dlb_core::{NoWorkload, Workload};
pub use dlb_topology::{ScheduleSpec, TopologySchedule};
pub use scenario::{
    InjectionStats, Scenario, ScenarioCheckpoint, ScenarioRecorder, ScenarioReport,
};
pub use workloads::WorkloadSpec;
