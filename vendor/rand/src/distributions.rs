//! Distribution types (subset of `rand::distributions`).

use std::ops::Range;

use crate::{RngCore, SampleRange};

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Uniform distribution over a half-open range, pre-validated at
/// construction like the real `rand::distributions::Uniform`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Uniform<T> {
    low: T,
    high: T,
}

impl<T: Copy + PartialOrd> From<Range<T>> for Uniform<T> {
    fn from(range: Range<T>) -> Self {
        assert!(
            range.start < range.end,
            "Uniform requires a non-empty range"
        );
        Uniform {
            low: range.start,
            high: range.end,
        }
    }
}

impl<T> Distribution<T> for Uniform<T>
where
    T: Copy,
    Range<T>: SampleRange<Output = T>,
{
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        (self.low..self.high).sample_one(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn uniform_usize_in_bounds_and_covering() {
        let mut rng = StdRng::seed_from_u64(13);
        let u = Uniform::from(0usize..5);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[u.sample(&mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "non-empty range")]
    fn uniform_rejects_empty_range() {
        let _ = Uniform::from(3usize..3);
    }
}
