//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard PRNG: xoshiro256++ seeded via SplitMix64.
///
/// Unlike the real `rand::rngs::StdRng` (ChaCha-based), this generator
/// is not cryptographically secure — which no caller here needs — but
/// it is fast, passes BigCrush, and is fully deterministic per seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// The generator's full internal state, for checkpointing. Feeding
    /// the returned words to [`StdRng::from_state`] yields a generator
    /// that continues the exact same stream.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a state captured by [`StdRng::state`].
    ///
    /// The all-zero state is a fixed point of xoshiro256++ and can
    /// never be produced by [`SeedableRng::seed_from_u64`]'s SplitMix64
    /// expansion, so it is rejected by falling back to the seed-0
    /// expansion rather than silently producing a dead generator.
    pub fn from_state(s: [u64; 4]) -> Self {
        if s == [0; 4] {
            return Self::seed_from_u64(0);
        }
        StdRng { s }
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        // SplitMix64 expansion, as recommended by the xoshiro authors.
        let mut sm = state;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}
