//! Sequence-related helpers (subset of `rand::seq`).

use crate::{Rng, RngCore};

/// In-place random permutation of slices.
pub trait SliceRandom {
    /// Fisher–Yates shuffle driven by `rng`.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        // i + 1 never overflows: i < len <= isize::MAX.
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..i + 1);
            self.swap(i, j);
        }
    }
}

impl<T> SliceRandom for Vec<T> {
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        self.as_mut_slice().shuffle(rng);
    }
}

/// Index sampling without replacement (subset of `rand::seq::index`).
pub mod index {
    use crate::{Rng, RngCore};

    /// The sampled indices, iterable by value like the real `IndexVec`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct IndexVec(Vec<usize>);

    impl IndexVec {
        /// Number of sampled indices.
        pub fn len(&self) -> usize {
            self.0.len()
        }

        /// Whether the sample is empty.
        pub fn is_empty(&self) -> bool {
            self.0.is_empty()
        }

        /// The indices as a vector.
        pub fn into_vec(self) -> Vec<usize> {
            self.0
        }

        /// Iterates over the sampled indices.
        pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
            self.0.iter().copied()
        }
    }

    impl IntoIterator for IndexVec {
        type Item = usize;
        type IntoIter = std::vec::IntoIter<usize>;
        fn into_iter(self) -> Self::IntoIter {
            self.0.into_iter()
        }
    }

    /// Samples `amount` distinct indices from `0..length`, in random
    /// order, via a partial Fisher–Yates shuffle.
    ///
    /// # Panics
    ///
    /// Panics if `amount > length`.
    pub fn sample<R: RngCore + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
        assert!(
            amount <= length,
            "cannot sample {amount} indices from 0..{length}"
        );
        let mut pool: Vec<usize> = (0..length).collect();
        for i in 0..amount {
            let j = rng.gen_range(i..length);
            pool.swap(i, j);
        }
        pool.truncate(amount);
        IndexVec(pool)
    }
}

#[cfg(test)]
mod tests {
    use super::index::sample;
    use super::SliceRandom;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        // 50! permutations: the identity is (astronomically) unlikely.
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_yields_distinct_in_range() {
        let mut rng = StdRng::seed_from_u64(5);
        for amount in [0usize, 1, 7, 20] {
            let s = sample(&mut rng, 20, amount).into_vec();
            assert_eq!(s.len(), amount);
            let mut dedup = s.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), amount, "indices must be distinct");
            assert!(s.iter().all(|&i| i < 20));
        }
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn sample_rejects_oversized_amount() {
        let mut rng = StdRng::seed_from_u64(5);
        let _ = sample(&mut rng, 3, 4);
    }
}
