//! A minimal, dependency-free, **offline** stand-in for the `rand`
//! crate, exposing exactly the API subset this workspace uses:
//!
//! * [`rngs::StdRng`] — a seedable, cloneable PRNG (xoshiro256++);
//! * [`SeedableRng::seed_from_u64`] / [`RngCore::next_u64`];
//! * [`Rng::gen_range`] over primitive integer and float ranges and
//!   [`Rng::gen_bool`];
//! * [`seq::SliceRandom::shuffle`] and [`seq::index::sample`];
//! * [`distributions::Uniform`] with [`distributions::Distribution`].
//!
//! The build container has no network access, so the real crates.io
//! package cannot be fetched; this shim keeps call sites source-
//! compatible. It is **not** the upstream implementation: stream values
//! differ from the real `StdRng`, but every generator here is
//! deterministic for a fixed seed, which is all the workspace (and its
//! CI) relies on.

#![forbid(unsafe_code)]

use std::ops::Range;

pub mod distributions;
pub mod rngs;
pub mod seq;

/// A source of random `u64`s (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed. Identical seeds yield
    /// identical streams.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from a `Range` by [`Rng::gen_range`].
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one value uniformly from the (half-open, non-empty) range.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift bounded sampling (Lemire); bias is
                // negligible for the small spans used here.
                let v = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                self.start + v as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, usize, u64);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let v = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

/// Maps 64 random bits to a uniform float in `[0, 1)` with 53-bit
/// precision.
#[inline]
pub(crate) fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Convenience sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform draw from a half-open range.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_one(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool requires p in [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&w));
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_small_ranges() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..256 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
    }
}
