//! A minimal, **offline** stand-in for the `criterion` benchmarking
//! crate, exposing the API subset this workspace's benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Throughput`]
//! and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! There is no statistical analysis, warm-up, or HTML report: each
//! benchmark runs a handful of timed iterations (capped so `cargo
//! bench` terminates quickly) and prints a median per-iteration time.
//! The point of the shim is that every bench target **compiles and
//! runs** without network access; swap in the real crates.io package
//! for publication-quality numbers.

#![forbid(unsafe_code)]

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Iterations measured per benchmark (the shim's "sample count" is
/// intentionally tiny; override with `CRITERION_SHIM_ITERS`).
fn shim_iters() -> u32 {
    std::env::var("CRITERION_SHIM_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(3)
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one("", &id.into(), None, &mut f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's iteration count is
    /// fixed (see [`Criterion`] docs).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    /// Sets the throughput used to report rates.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &id.into(), self.throughput.as_ref(), &mut f);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.name, &id.into(), self.throughput.as_ref(), &mut |b| {
            f(b, input)
        });
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

fn run_one(
    group: &str,
    id: &BenchmarkId,
    throughput: Option<&Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        samples: Vec::new(),
    };
    for _ in 0..shim_iters() {
        f(&mut bencher);
    }
    let mut per_iter: Vec<Duration> = bencher.samples;
    per_iter.sort_unstable();
    let median = per_iter
        .get(per_iter.len() / 2)
        .copied()
        .unwrap_or_default();
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    match throughput {
        Some(Throughput::Elements(n)) if !median.is_zero() => {
            let rate = *n as f64 / median.as_secs_f64();
            println!("bench {label:<48} {median:>12.2?}/iter  {rate:>14.0} elem/s");
        }
        Some(Throughput::Bytes(n)) if !median.is_zero() => {
            let rate = *n as f64 / median.as_secs_f64();
            println!("bench {label:<48} {median:>12.2?}/iter  {rate:>14.0} B/s");
        }
        _ => println!("bench {label:<48} {median:>12.2?}/iter"),
    }
}

/// Times closures on behalf of a benchmark body.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Runs `f` once, recording its wall-clock duration as one sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.samples.push(start.elapsed());
    }
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with a function name and a displayed parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id keyed by parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.function.is_empty(), &self.parameter) {
            (false, Some(p)) => write!(f, "{}/{}", self.function, p),
            (false, None) => write!(f, "{}", self.function),
            (true, Some(p)) => write!(f, "{p}"),
            (true, None) => Ok(()),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(function: &str) -> Self {
        BenchmarkId {
            function: function.to_owned(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(function: String) -> Self {
        BenchmarkId {
            function,
            parameter: None,
        }
    }
}

/// Units for rate reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Collects benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_ids_render() {
        assert_eq!(BenchmarkId::new("f", 64).to_string(), "f/64");
        assert_eq!(BenchmarkId::from("plain").to_string(), "plain");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }

    #[test]
    fn groups_run_and_record() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        let mut runs = 0usize;
        group
            .sample_size(10)
            .throughput(Throughput::Elements(100))
            .bench_function("count", |b| b.iter(|| runs += 1));
        group.finish();
        assert!(runs >= 1);
    }
}
