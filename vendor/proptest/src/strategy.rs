//! Value-generation strategies.

use std::ops::Range;

use rand::{Rng, RngCore};

use crate::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// The real proptest pairs generation with shrinking; this stand-in
/// only generates.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Restricts the strategy to values satisfying `pred`, resampling
    /// on rejection (the real proptest rejects the whole case; the
    /// effect is the same for the deterministic suites here).
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        // 10k rejections in a row means the predicate is effectively
        // unsatisfiable — surface that rather than spinning forever.
        for _ in 0..10_000 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 10000 consecutive samples: {}",
            self.reason
        );
    }
}

macro_rules! impl_strategy_for_tuple {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

impl_strategy_for_tuple!(A.0);
impl_strategy_for_tuple!(A.0, B.1);
impl_strategy_for_tuple!(A.0, B.1, C.2);
impl_strategy_for_tuple!(A.0, B.1, C.2, D.3);
impl_strategy_for_tuple!(A.0, B.1, C.2, D.3, E.4);

macro_rules! impl_strategy_for_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_strategy_for_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

/// Strategy for `Vec<T>` with element strategy `S` and a length range.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.clone());
        let _ = rng.next_u64(); // decorrelate length from first element
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
