//! A minimal, deterministic, **offline** stand-in for the `proptest`
//! crate, exposing the API subset this workspace's property suites use:
//!
//! * the [`proptest!`] macro wrapping `#[test]` functions whose
//!   arguments are drawn from strategies (`arg in strategy`);
//! * range strategies over primitive numeric types (`3usize..200`,
//!   `-10.0f64..10.0`, …) and [`collection::vec`];
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`] and
//!   [`prop_assume!`].
//!
//! Unlike the real proptest there is **no shrinking** and no failure
//! persistence: each test runs a fixed number of cases (default 32,
//! override with `PROPTEST_CASES`) from a PRNG seeded by a stable hash
//! of the test name — runs are fully deterministic in CI by
//! construction, which is the property the workspace relies on.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod collection;
pub mod strategy;

/// The RNG driving strategy sampling.
pub type TestRng = StdRng;

/// Number of cases per property, from `PROPTEST_CASES` or 32.
pub fn num_cases() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(32)
}

/// Per-block configuration, set with
/// `#![proptest_config(ProptestConfig::with_cases(n))]` as the first
/// line of a [`proptest!`] block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Cases to run per property.
    pub cases: usize,
}

impl ProptestConfig {
    /// A configuration running exactly `cases` cases (the
    /// `PROPTEST_CASES` environment variable is then ignored, matching
    /// the real proptest's explicit-config precedence).
    pub fn with_cases(cases: usize) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: num_cases() }
    }
}

/// A deterministic RNG for the named test: the seed is a stable FNV-1a
/// hash of the test name, so every run (and every machine) replays the
/// same cases.
pub fn test_rng(test_name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    TestRng::seed_from_u64(h)
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Wraps property-style test functions. Each function's arguments are
/// sampled from the given strategies for [`num_cases`] cases.
///
/// As with the real proptest, `#[test]` (and `#[ignore]`, doc
/// comments, …) are written by the caller inside the block and passed
/// through to the generated zero-argument function — the macro does
/// not add `#[test]` itself.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest! { @impl ($config) $($rest)* }
    };
    (@impl ($config:expr)) => {};
    (@impl ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __dlb_cases = ($config).cases;
            let mut __dlb_rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            for __dlb_case in 0..__dlb_cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __dlb_rng);)+
                // `prop_assume!` skips the case by returning from this
                // closure; `?`-free bodies always evaluate to ().
                let mut __dlb_body = || $body;
                __dlb_body();
                let _ = __dlb_case;
            }
        }
        $crate::proptest! { @impl ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @impl ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// `assert!` under a property-test name.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a property-test name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under a property-test name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::ProptestConfig;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Doc comments and attributes pass through the macro.
        #[test]
        fn ranges_respect_bounds(n in 3usize..200, x in -10.0f64..10.0) {
            prop_assert!((3..200).contains(&n));
            prop_assert!((-10.0..10.0).contains(&x));
        }

        #[test]
        fn assume_skips_cases(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn vec_strategy_obeys_shape(v in crate::collection::vec(0i64..100, 6..40)) {
            prop_assert!((6..40).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| (0..100).contains(&x)));
        }
    }

    #[test]
    fn test_rng_is_stable_per_name() {
        use rand::RngCore;
        let mut a = crate::test_rng("some::test");
        let mut b = crate::test_rng("some::test");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_rng("other::test");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
