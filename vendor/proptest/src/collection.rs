//! Collection strategies (subset of `proptest::collection`).

use std::ops::Range;

use crate::strategy::{Strategy, VecStrategy};

/// Strategy producing `Vec`s whose length is drawn from `size` and
/// whose elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(
        size.start < size.end,
        "vec strategy needs a non-empty size range"
    );
    VecStrategy { element, size }
}
