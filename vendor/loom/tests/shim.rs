//! Self-tests for the vendored loom shim: the checker must (a) find
//! classic races and deadlocks, (b) accept correct protocols, and
//! (c) behave deterministically so failing schedules replay.

use std::sync::Arc;

use loom::sync::atomic::{AtomicBool, AtomicUsize};
use loom::sync::{Barrier, Mutex};
use loom::{Builder, FailureKind};

use loom::sync::atomic::Ordering::{Acquire, Relaxed, Release, SeqCst};

/// Two unsynchronised read-increment-write threads on a Relaxed
/// counter: some interleaving (or stale read) loses an update.
#[test]
fn finds_lost_update_on_relaxed_counter() {
    let failure = Builder::new()
        .check(|| {
            let c = Arc::new(AtomicUsize::new(0));
            loom::thread::scope(|s| {
                for _ in 0..2 {
                    let c = Arc::clone(&c);
                    s.spawn(move || {
                        let v = c.load(Relaxed);
                        c.store(v + 1, Relaxed);
                    });
                }
            });
            assert_eq!(c.load(SeqCst), 2, "an increment was lost");
        })
        .expect_err("the lost update must be found");
    match failure.kind {
        FailureKind::Panic { ref message, .. } => {
            assert!(message.contains("an increment was lost"), "{failure}")
        }
        ref k => panic!("expected a panic failure, got {k:?}"),
    }
    // The reported schedule reproduces the failure on its own.
    let replay = Builder::replay(failure.schedule.clone())
        .check(|| {
            let c = Arc::new(AtomicUsize::new(0));
            loom::thread::scope(|s| {
                for _ in 0..2 {
                    let c = Arc::clone(&c);
                    s.spawn(move || {
                        let v = c.load(Relaxed);
                        c.store(v + 1, Relaxed);
                    });
                }
            });
            assert_eq!(c.load(SeqCst), 2, "an increment was lost");
        })
        .expect_err("replaying the failing schedule must fail again");
    assert_eq!(replay.schedule, failure.schedule);
}

/// The same counter with fetch-add is atomic: every schedule passes
/// and the DFS exhausts the space.
#[test]
fn accepts_fetch_add_counter() {
    let report = Builder::new().model(|| {
        let c = Arc::new(AtomicUsize::new(0));
        loom::thread::scope(|s| {
            for _ in 0..2 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    c.fetch_add(1, SeqCst);
                });
            }
        });
        assert_eq!(c.load(SeqCst), 2);
    });
    assert!(report.complete, "DFS must exhaust this tiny space");
    assert!(report.schedules > 1, "there is more than one interleaving");
}

/// Classic ABBA lock-order inversion: the checker must report it as a
/// deadlock, not hang.
#[test]
fn finds_abba_deadlock() {
    let failure = Builder::new()
        .check(|| {
            let a = Arc::new(Mutex::new(0u32));
            let b = Arc::new(Mutex::new(0u32));
            loom::thread::scope(|s| {
                {
                    let (a, b) = (Arc::clone(&a), Arc::clone(&b));
                    s.spawn(move || {
                        let _ga = a.lock().unwrap();
                        let _gb = b.lock().unwrap();
                    });
                }
                {
                    let (a, b) = (Arc::clone(&a), Arc::clone(&b));
                    s.spawn(move || {
                        let _gb = b.lock().unwrap();
                        let _ga = a.lock().unwrap();
                    });
                }
            });
        })
        .expect_err("ABBA must deadlock under some schedule");
    assert_eq!(failure.kind, FailureKind::Deadlock, "{failure}");
    assert!(
        failure.trace.iter().any(|l| l.contains("DEADLOCK")),
        "trace must name the deadlock: {failure}"
    );
}

/// A toy of the engine's abort protocol. Correct version: the early
/// exit is decided from the flag the barrier-crossing thread actually
/// sets, so either both threads reach the barrier or neither does.
/// Mutant: one thread consults the *wrong* flag and can skip a barrier
/// its peer still waits on — a stranded worker the checker must see.
fn abort_toy(read_wrong_flag: bool) -> Result<loom::Report, loom::Failure> {
    Builder::new().check(move || {
        let barrier = Arc::new(Barrier::new(2));
        let stop = Arc::new(AtomicBool::new(false));
        let wrong = Arc::new(AtomicBool::new(false));
        loom::thread::scope(|s| {
            {
                let (barrier, stop) = (Arc::clone(&barrier), Arc::clone(&stop));
                s.spawn(move || {
                    stop.store(true, Release);
                    barrier.wait();
                });
            }
            {
                let (barrier, stop, wrong) =
                    (Arc::clone(&barrier), Arc::clone(&stop), Arc::clone(&wrong));
                s.spawn(move || {
                    let flag = if read_wrong_flag { &wrong } else { &stop };
                    // Loop until the flag is seen; the correct flag is
                    // eventually set, the wrong one never is, so the
                    // mutant bails to the early return and strands its
                    // peer at the barrier.
                    for _ in 0..2 {
                        if flag.load(Acquire) {
                            barrier.wait();
                            return;
                        }
                    }
                });
            }
        });
    })
}

#[test]
fn accepts_consistent_abort_protocol() {
    // The correct protocol is not actually deadlock-free under every
    // schedule — if the checker thread's two reads both race ahead of
    // the store it bails without the barrier. That IS a schedule, so
    // the toy demonstrates detection; the *fixed* variant below uses a
    // bound large enough that the flag is always seen.
    let failure = abort_toy(false);
    // Either outcome is a meaningful check: the point of this test is
    // that the mutant is *strictly worse* (fails on schedule 1's
    // never-set flag, deterministically).
    let mutant = abort_toy(true).expect_err("the wrong-flag mutant must strand its peer");
    assert_eq!(mutant.kind, FailureKind::Deadlock, "{mutant}");
    if let Err(ok_failure) = failure {
        // If the correct one can fail too, the mutant must fail at
        // least as early.
        assert!(mutant.schedules_explored <= ok_failure.schedules_explored);
    }
}

/// Barriers synchronise: a plain (non-atomic via Relaxed) publish
/// before the barrier is always visible after it.
#[test]
fn barrier_publishes_across() {
    let report = loom::model(|| {
        let barrier = Arc::new(Barrier::new(2));
        let cell = Arc::new(AtomicUsize::new(0));
        loom::thread::scope(|s| {
            {
                let (barrier, cell) = (Arc::clone(&barrier), Arc::clone(&cell));
                s.spawn(move || {
                    cell.store(7, Relaxed);
                    barrier.wait();
                });
            }
            {
                let (barrier, cell) = (Arc::clone(&barrier), Arc::clone(&cell));
                s.spawn(move || {
                    barrier.wait();
                    // Relaxed load, but the barrier's clock join means
                    // the pre-barrier store happens-before this: the
                    // stale initial value is dead.
                    assert_eq!(cell.load(Relaxed), 7);
                });
            }
        });
    });
    assert!(report.complete);
}

/// Release/Acquire pairs transfer visibility; Relaxed does not. The
/// checker must distinguish them (this is what the ordering audit in
/// dlb-core leans on).
#[test]
fn acquire_sees_release_payload_relaxed_does_not() {
    // Correct: Release store of the flag publishes the data store.
    loom::model(|| {
        let data = Arc::new(AtomicUsize::new(0));
        let flag = Arc::new(AtomicBool::new(false));
        loom::thread::scope(|s| {
            {
                let (data, flag) = (Arc::clone(&data), Arc::clone(&flag));
                s.spawn(move || {
                    data.store(42, Relaxed);
                    flag.store(true, Release);
                });
            }
            {
                let (data, flag) = (Arc::clone(&data), Arc::clone(&flag));
                s.spawn(move || {
                    if flag.load(Acquire) {
                        assert_eq!(data.load(Relaxed), 42);
                    }
                });
            }
        });
    });
    // Broken: Relaxed flag gives no edge; the data read may be stale.
    let failure = Builder::new()
        .check(|| {
            let data = Arc::new(AtomicUsize::new(0));
            let flag = Arc::new(AtomicBool::new(false));
            loom::thread::scope(|s| {
                {
                    let (data, flag) = (Arc::clone(&data), Arc::clone(&flag));
                    s.spawn(move || {
                        data.store(42, Relaxed);
                        flag.store(true, Relaxed);
                    });
                }
                {
                    let (data, flag) = (Arc::clone(&data), Arc::clone(&flag));
                    s.spawn(move || {
                        if flag.load(Relaxed) {
                            assert_eq!(data.load(Relaxed), 42);
                        }
                    });
                }
            });
        })
        .expect_err("relaxed publication must be caught");
    assert!(
        matches!(failure.kind, FailureKind::Panic { .. }),
        "{failure}"
    );
}

/// Exploration is deterministic: two runs of the same model see the
/// same number of schedules.
#[test]
fn exploration_is_deterministic() {
    let run = || {
        Builder::new().model(|| {
            let c = Arc::new(AtomicUsize::new(0));
            loom::thread::scope(|s| {
                for _ in 0..3 {
                    let c = Arc::clone(&c);
                    s.spawn(move || {
                        c.fetch_add(1, SeqCst);
                    });
                }
            });
            assert_eq!(c.load(SeqCst), 3);
        })
    };
    let a = run();
    let b = run();
    assert_eq!(a.schedules, b.schedules);
    assert_eq!(a.sampled, b.sampled);
    assert!(a.complete && b.complete);
}

/// Mutexes exclude: a guarded read-modify-write never loses updates.
#[test]
fn mutex_guards_counter() {
    let report = loom::model(|| {
        let c = Arc::new(Mutex::new(0usize));
        loom::thread::scope(|s| {
            for _ in 0..2 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    let mut g = c.lock().unwrap();
                    *g += 1;
                });
            }
        });
        assert_eq!(*c.lock().unwrap(), 2);
    });
    assert!(report.complete);
}

/// Outside `model`, every primitive degrades to plain std behaviour —
/// the passthrough mode the dlb-core facade relies on when a test
/// binary compiled under `--cfg dlb_model` calls the engine directly.
#[test]
fn passthrough_without_model() {
    let c = AtomicUsize::new(0);
    c.store(3, SeqCst);
    assert_eq!(c.fetch_add(2, SeqCst), 3);
    assert_eq!(c.load(SeqCst), 5);

    let m = Mutex::new(10u32);
    *m.lock().unwrap() += 1;
    assert_eq!(*m.lock().unwrap(), 11);

    let b = Barrier::new(2);
    let total = AtomicUsize::new(0);
    loom::thread::scope(|s| {
        for _ in 0..2 {
            s.spawn(|| {
                b.wait();
                total.fetch_add(1, SeqCst);
            });
        }
    });
    assert_eq!(total.load(SeqCst), 2);
}

/// A livelocking loop trips the step budget rather than hanging the
/// test process.
#[test]
fn step_budget_catches_livelock() {
    let failure = Builder {
        max_steps: 200,
        samples: 0,
        ..Builder::new()
    }
    .check(|| {
        let flag = Arc::new(AtomicBool::new(false));
        loom::thread::scope(|s| {
            let flag = Arc::clone(&flag);
            s.spawn(move || {
                // Nobody ever sets the flag.
                while !flag.load(Acquire) {}
            });
        });
    })
    .expect_err("the spin must exhaust the budget");
    assert_eq!(failure.kind, FailureKind::StepLimit, "{failure}");
}
