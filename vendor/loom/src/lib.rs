//! A minimal, dependency-free, **offline** stand-in for the
//! [`loom`](https://crates.io/crates/loom) concurrency model checker,
//! exposing the API subset this workspace uses.
//!
//! The build container has no network access, so the real crates.io
//! package cannot be fetched; this shim keeps call sites source-
//! compatible. It is **not** the upstream implementation, but it is a
//! real model checker:
//!
//! * [`model`] / [`Builder`] run a closure under **every thread
//!   interleaving** reachable within a preemption bound, via a
//!   cooperative scheduler with a yield point at each synchronisation
//!   operation and exhaustive DFS over the choice tree, then sample
//!   further schedules with a deterministic seeded RNG (PCT-style);
//! * [`sync`] provides `Mutex`, `Barrier` and atomics that register
//!   those yield points — atomics carry **vector clocks**, so a
//!   `Relaxed`/`Acquire` load may observe any store not yet ordered
//!   before the loading thread and value nondeterminism is explored
//!   alongside scheduling nondeterminism;
//! * [`thread::scope`] mirrors `std::thread::scope` with scheduled
//!   spawns and joins;
//! * **deadlock detection**: a state where every unfinished thread is
//!   blocked fails the exploration with the schedule that got there;
//! * every failure ([`Failure`]) carries a replayable schedule
//!   ([`Builder::replay`]) and a rendered event trace.
//!
//! Outside a model run every primitive degrades to its `std`
//! counterpart, so a crate compiled against this shim behaves
//! normally when exercised by ordinary tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod model;
mod rt;
pub mod sync;
pub mod thread;

pub use model::{model, Builder, Failure, FailureKind, Report};
pub use rt::ModelAbort;
