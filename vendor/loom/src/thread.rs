//! Model-aware scoped threads.
//!
//! [`scope`] mirrors [`std::thread::scope`]: real OS threads are
//! spawned (so borrows work exactly as in std), but on a model thread
//! each spawned closure first parks until the scheduler admits it, and
//! every join is a scheduler wait. The implicit join at scope exit is
//! modelled too: the wrapper records every spawned model thread and
//! performs a scheduler-visible join for each before handing control
//! to std's own (OS-level) scope join, so threads left unjoined by the
//! closure do not park the process.

use std::cell::RefCell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;

use crate::rt::{self, ModelAbort, Runtime};

/// Model-aware scope handle; see [`scope`].
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
    rt: Option<Arc<Runtime>>,
    /// Model tids spawned in this scope, joined (again — the wait is
    /// idempotent once a thread has finished) at scope exit.
    spawned: RefCell<Vec<usize>>,
}

/// Handle to a thread spawned in a [`Scope`].
pub struct ScopedJoinHandle<'scope, T> {
    inner: HandleInner<'scope, T>,
}

enum HandleInner<'scope, T> {
    Std(std::thread::ScopedJoinHandle<'scope, T>),
    Model {
        handle: std::thread::ScopedJoinHandle<'scope, Option<T>>,
        rt: Arc<Runtime>,
        tid: usize,
    },
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread; in model mode it becomes a scheduled
    /// model thread.
    ///
    /// Takes `&self` (not `&'scope self`): the wrapper already owns a
    /// `&'scope` reference to the underlying std scope, so callers can
    /// hold the wrapper for any shorter region.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce() -> T + Send + 'scope,
        T: Send + 'scope,
    {
        match &self.rt {
            None => ScopedJoinHandle {
                inner: HandleInner::Std(self.inner.spawn(f)),
            },
            Some(rt) => {
                let parent = rt::current()
                    .expect("model scope spawned from outside its execution")
                    .tid;
                let tid = rt.register_thread(parent);
                self.spawned.borrow_mut().push(tid);
                let rt2 = Arc::clone(rt);
                let handle = self.inner.spawn(move || {
                    rt2.thread_begin(tid);
                    let r = panic::catch_unwind(AssertUnwindSafe(f));
                    let panic_msg = match &r {
                        Ok(_) => None,
                        Err(p) if p.downcast_ref::<ModelAbort>().is_some() => None,
                        Err(p) => Some(rt::panic_message(p)),
                    };
                    rt2.thread_end(tid, panic_msg);
                    r.ok()
                });
                ScopedJoinHandle {
                    inner: HandleInner::Model {
                        handle,
                        rt: Arc::clone(rt),
                        tid,
                    },
                }
            }
        }
    }
}

impl<T> ScopedJoinHandle<'_, T> {
    /// Waits for the thread to finish, returning its result.
    ///
    /// # Errors
    ///
    /// The thread's panic payload, as in std. In model mode a real
    /// worker panic aborts the whole execution first, so the error
    /// arm only reports it redundantly.
    pub fn join(self) -> std::thread::Result<T> {
        match self.inner {
            HandleInner::Std(h) => h.join(),
            HandleInner::Model { handle, rt, tid } => {
                let me = rt::current()
                    .expect("model join from outside its execution")
                    .tid;
                rt.join_wait(me, tid);
                match handle.join() {
                    Ok(Some(v)) => Ok(v),
                    Ok(None) => Err(Box::new("model worker panicked")),
                    Err(e) => Err(e),
                }
            }
        }
    }
}

/// Model-aware [`std::thread::scope`].
pub fn scope<'env, F, T>(f: F) -> T
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> T,
{
    let current = rt::current();
    std::thread::scope(|s| {
        let wrapped = Scope {
            inner: s,
            rt: current.as_ref().map(|c| Arc::clone(&c.rt)),
            spawned: RefCell::new(Vec::new()),
        };
        let result = panic::catch_unwind(AssertUnwindSafe(|| f(&wrapped)));
        match result {
            Ok(v) => {
                // Model the implicit join: wait, through the scheduler,
                // for every thread this scope spawned. Without this the
                // OS-level join below would park the process while the
                // workers sit unscheduled.
                if let Some(c) = &current {
                    for &tid in wrapped.spawned.borrow().iter() {
                        c.rt.join_wait(c.tid, tid);
                    }
                }
                v
            }
            Err(payload) => {
                // A panic between spawn and join would leave workers
                // parked forever in the scheduler; kill the execution
                // so they unwind, then continue the panic.
                if let Some(c) = &current {
                    let msg = if payload.downcast_ref::<ModelAbort>().is_some() {
                        String::from("(aborted)")
                    } else {
                        rt::panic_message(&payload)
                    };
                    c.rt.force_abort(c.tid, msg);
                }
                panic::resume_unwind(payload);
            }
        }
    })
}
