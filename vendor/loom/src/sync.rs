//! Model-aware drop-ins for the `std::sync` types the workspace uses.
//!
//! Each primitive runs in one of two modes, decided at construction:
//! created on a model thread (inside [`crate::model`]) it registers
//! with the execution's scheduler and every operation becomes an
//! explored interleaving point; created anywhere else it degrades to
//! plain `std` behaviour, so code compiled against this crate still
//! works outside a model run.

use std::sync::Arc;

use crate::rt::{self, Runtime};

pub use crate::rt::Ordering as ModelOrdering;

/// A handle tying an object to the model execution that created it.
#[derive(Clone)]
pub(crate) struct ModelRef {
    pub rt: Arc<Runtime>,
    pub oid: usize,
}

impl ModelRef {
    fn me(&self) -> usize {
        rt::current()
            .expect("model object used from a thread outside its model execution")
            .tid
    }
}

// ---- Mutex ----------------------------------------------------------

/// Model-aware [`std::sync::Mutex`]. The data itself always lives in
/// an inner std mutex (kept uncontended by the scheduler, which admits
/// one thread at a time); the model layer decides *when* each lock
/// acquisition is allowed to proceed and explores the alternatives.
pub struct Mutex<T> {
    ctl: Option<ModelRef>,
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T> {
    // Declared before `inner` so the model release happens first; the
    // scheduler does not run another thread until our next yield
    // point, by which time the std guard has dropped too.
    ctl: Option<ModelRef>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates the mutex, registering it with the current model
    /// execution if one is active.
    pub fn new(value: T) -> Self {
        let ctl = rt::current().map(|c| ModelRef {
            oid: c.rt.register_mutex(),
            rt: c.rt,
        });
        Mutex {
            ctl,
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Locks, blocking (in model mode: yielding to the scheduler)
    /// until available.
    ///
    /// # Errors
    ///
    /// Propagates std poisoning, exactly like [`std::sync::Mutex`].
    pub fn lock(&self) -> std::sync::LockResult<MutexGuard<'_, T>> {
        if let Some(m) = &self.ctl {
            m.rt.mutex_lock(m.me(), m.oid);
        }
        match self.inner.lock() {
            Ok(g) => Ok(MutexGuard {
                ctl: self.ctl.clone(),
                inner: Some(g),
            }),
            Err(poison) => Err(std::sync::PoisonError::new(MutexGuard {
                ctl: self.ctl.clone(),
                inner: Some(poison.into_inner()),
            })),
        }
    }

    /// Consumes the mutex, returning the data.
    ///
    /// # Errors
    ///
    /// Propagates std poisoning.
    pub fn into_inner(self) -> std::sync::LockResult<T> {
        self.inner.into_inner()
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds data until drop")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard holds data until drop")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Drop the std guard first so the data is free before the
        // model marks the mutex released (no other model thread runs
        // in between: the current thread stays scheduled until its
        // next yield point).
        self.inner = None;
        if let Some(m) = &self.ctl {
            m.rt.mutex_unlock(m.me(), m.oid);
        }
    }
}

// ---- Barrier --------------------------------------------------------

/// Model-aware [`std::sync::Barrier`].
pub struct Barrier {
    ctl: Option<ModelRef>,
    std: Option<std::sync::Barrier>,
}

/// Result of [`Barrier::wait`], mirroring std's.
pub struct BarrierWaitResult(bool);

impl BarrierWaitResult {
    /// True for exactly one thread per barrier generation.
    #[must_use]
    pub fn is_leader(&self) -> bool {
        self.0
    }
}

impl Barrier {
    /// Creates a barrier for `n` threads.
    #[must_use]
    pub fn new(n: usize) -> Self {
        match rt::current() {
            Some(c) => Barrier {
                ctl: Some(ModelRef {
                    oid: c.rt.register_barrier(n),
                    rt: c.rt,
                }),
                std: None,
            },
            None => Barrier {
                ctl: None,
                std: Some(std::sync::Barrier::new(n)),
            },
        }
    }

    /// Blocks until all `n` threads have arrived.
    pub fn wait(&self) -> BarrierWaitResult {
        match (&self.ctl, &self.std) {
            (Some(m), _) => BarrierWaitResult(m.rt.barrier_wait(m.me(), m.oid)),
            (None, Some(b)) => BarrierWaitResult(b.wait().is_leader()),
            (None, None) => unreachable!("barrier has exactly one backend"),
        }
    }
}

// ---- atomics --------------------------------------------------------

/// Model-aware atomics.
pub mod atomic {
    use super::ModelRef;
    use crate::rt;

    pub use crate::rt::Ordering;

    fn to_std(ord: Ordering) -> std::sync::atomic::Ordering {
        match ord {
            Ordering::Relaxed => std::sync::atomic::Ordering::Relaxed,
            Ordering::Acquire => std::sync::atomic::Ordering::Acquire,
            Ordering::Release => std::sync::atomic::Ordering::Release,
            Ordering::AcqRel => std::sync::atomic::Ordering::AcqRel,
            Ordering::SeqCst => std::sync::atomic::Ordering::SeqCst,
        }
    }

    macro_rules! model_atomic {
        ($name:ident, $std:ty, $val:ty) => {
            /// Model-aware drop-in for the std atomic of the same name.
            /// In model mode loads may observe any store the scheduler
            /// has not yet ordered before this thread — the weaker the
            /// `Ordering`, the more behaviours are explored.
            pub struct $name {
                ctl: Option<ModelRef>,
                std: $std,
            }

            impl $name {
                /// Creates the atomic, registering it with the current
                /// model execution if one is active.
                pub fn new(value: $val) -> Self {
                    let ctl = rt::current().map(|c| ModelRef {
                        oid: c.rt.register_atomic(c.tid, value as u64),
                        rt: c.rt,
                    });
                    $name {
                        ctl,
                        std: <$std>::new(value),
                    }
                }

                /// Loads the value; in model mode a choice point.
                pub fn load(&self, ord: Ordering) -> $val {
                    match &self.ctl {
                        Some(m) => m.rt.atomic_load(m.me(), m.oid, ord) as $val,
                        None => self.std.load(to_std(ord)),
                    }
                }

                /// Stores `value`.
                pub fn store(&self, value: $val, ord: Ordering) {
                    match &self.ctl {
                        Some(m) => m.rt.atomic_store(m.me(), m.oid, value as u64, ord),
                        None => self.std.store(value, to_std(ord)),
                    }
                }

                /// Swaps in `value`, returning the previous value.
                pub fn swap(&self, value: $val, ord: Ordering) -> $val {
                    match &self.ctl {
                        Some(m) => m.rt.atomic_rmw(m.me(), m.oid, |_| value as u64, ord) as $val,
                        None => self.std.swap(value, to_std(ord)),
                    }
                }

                /// Atomically adds `value`, returning the previous value.
                pub fn fetch_add(&self, value: $val, ord: Ordering) -> $val {
                    match &self.ctl {
                        Some(m) => {
                            m.rt.atomic_rmw(m.me(), m.oid, |v| v.wrapping_add(value as u64), ord)
                                as $val
                        }
                        None => self.std.fetch_add(value, to_std(ord)),
                    }
                }
            }
        };
    }

    model_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
    model_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);

    /// Model-aware drop-in for [`std::sync::atomic::AtomicBool`]; see
    /// the integer atomics for the semantics.
    pub struct AtomicBool {
        ctl: Option<ModelRef>,
        std: std::sync::atomic::AtomicBool,
    }

    impl AtomicBool {
        /// Creates the atomic, registering it with the current model
        /// execution if one is active.
        #[must_use]
        pub fn new(value: bool) -> Self {
            let ctl = rt::current().map(|c| ModelRef {
                oid: c.rt.register_atomic(c.tid, u64::from(value)),
                rt: c.rt,
            });
            AtomicBool {
                ctl,
                std: std::sync::atomic::AtomicBool::new(value),
            }
        }

        /// Loads the value; in model mode a choice point.
        pub fn load(&self, ord: Ordering) -> bool {
            match &self.ctl {
                Some(m) => m.rt.atomic_load(m.me(), m.oid, ord) != 0,
                None => self.std.load(to_std(ord)),
            }
        }

        /// Stores `value`.
        pub fn store(&self, value: bool, ord: Ordering) {
            match &self.ctl {
                Some(m) => m.rt.atomic_store(m.me(), m.oid, u64::from(value), ord),
                None => self.std.store(value, to_std(ord)),
            }
        }

        /// Swaps in `value`, returning the previous value.
        pub fn swap(&self, value: bool, ord: Ordering) -> bool {
            match &self.ctl {
                Some(m) => m.rt.atomic_rmw(m.me(), m.oid, |_| u64::from(value), ord) != 0,
                None => self.std.swap(value, to_std(ord)),
            }
        }
    }
}
