//! The cooperative scheduler behind one model execution.
//!
//! Exactly one model thread executes user code at any instant: every
//! synchronisation operation enters the runtime, which (a) records the
//! operation in the execution trace, (b) offers the explorer a *choice
//! point* — which runnable thread proceeds, or which visible store a
//! weak load observes — and (c) parks the calling OS thread on a
//! condvar until the schedule hands control back. Replaying a recorded
//! choice prefix therefore reproduces an execution exactly, which is
//! what both the DFS explorer and the failure trace rely on.
//!
//! Happens-before is tracked with per-thread vector clocks: barriers
//! join every participant, mutex release/acquire and Release stores /
//! Acquire loads transfer clocks, spawn seeds the child and join folds
//! it back. Atomic loads may observe any store not already ordered
//! before the loading thread (newest first), so weakening an ordering
//! genuinely widens the set of explored behaviours.

use std::collections::HashMap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Memory orderings, mirroring `std::sync::atomic::Ordering`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ordering {
    /// No synchronisation: the load may observe stale stores.
    Relaxed,
    /// Loads join the clock of the Release store they observe.
    Acquire,
    /// Stores publish the writer's clock.
    Release,
    /// Both of the above (for read-modify-writes).
    AcqRel,
    /// Sequentially consistent: modelled as the newest store.
    SeqCst,
}

impl Ordering {
    pub(crate) fn acquires(self) -> bool {
        matches!(
            self,
            Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst
        )
    }
    pub(crate) fn releases(self) -> bool {
        matches!(
            self,
            Ordering::Release | Ordering::AcqRel | Ordering::SeqCst
        )
    }
}

/// The panic payload the runtime throws to tear worker threads down
/// once an execution has failed (deadlock, step limit, a peer's
/// panic). Spawn wrappers swallow it. Public so code under test that
/// catches panics for robustness (the engine's worker-panic guard) can
/// recognise a teardown unwind and re-raise it instead of treating it
/// as an application panic.
pub struct ModelAbort;

fn abort_unwind() -> ! {
    panic::panic_any(ModelAbort)
}

/// A vector clock over model thread ids.
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct VClock(Vec<u32>);

impl VClock {
    fn get(&self, t: usize) -> u32 {
        self.0.get(t).copied().unwrap_or(0)
    }
    fn bump(&mut self, t: usize) {
        if self.0.len() <= t {
            self.0.resize(t + 1, 0);
        }
        self.0[t] += 1;
    }
    fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (a, b) in self.0.iter_mut().zip(other.0.iter()) {
            *a = (*a).max(*b);
        }
    }
    /// `self ≤ other` componentwise: everything this clock has seen,
    /// `other` has seen too.
    fn le(&self, other: &VClock) -> bool {
        self.0.iter().enumerate().all(|(i, &v)| v <= other.get(i))
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Run {
    Ready,
    BlockedMutex(usize),
    BlockedBarrier(usize),
    BlockedJoin(usize),
    Finished,
}

struct ThreadState {
    run: Run,
    clock: VClock,
}

struct StoreRec {
    value: u64,
    /// The writer's clock at the store (for visibility pruning).
    write: VClock,
    /// `Some` iff the store had Release semantics: the clock an
    /// acquiring load joins.
    release: Option<VClock>,
    by: usize,
}

enum Object {
    Mutex {
        held_by: Option<usize>,
        release: VClock,
    },
    Barrier {
        size: usize,
        arrived: Vec<usize>,
        acc: VClock,
        generation: u64,
    },
    Atomic {
        stores: Vec<StoreRec>,
        /// Per-thread coherence floor: a thread never re-reads a store
        /// older than one it has already observed.
        last_read: HashMap<usize, usize>,
    },
}

/// One entry of an execution trace, formatted lazily on failure.
#[derive(Debug, Clone)]
pub(crate) enum Ev {
    Spawn {
        parent: usize,
        child: usize,
    },
    Switch {
        to: usize,
    },
    MutexLock {
        t: usize,
        o: usize,
    },
    MutexBlock {
        t: usize,
        o: usize,
    },
    MutexUnlock {
        t: usize,
        o: usize,
    },
    BarrierArrive {
        t: usize,
        o: usize,
        n: usize,
        size: usize,
    },
    BarrierRelease {
        t: usize,
        o: usize,
    },
    Load {
        t: usize,
        o: usize,
        val: u64,
        ord: Ordering,
        stale: bool,
        by: usize,
    },
    Store {
        t: usize,
        o: usize,
        val: u64,
        ord: Ordering,
    },
    Rmw {
        t: usize,
        o: usize,
        old: u64,
        new: u64,
        ord: Ordering,
    },
    JoinWait {
        t: usize,
        target: usize,
    },
    Finish {
        t: usize,
    },
    Panic {
        t: usize,
        msg: String,
    },
    Deadlock {
        blocked: Vec<(usize, String)>,
    },
}

impl Ev {
    fn render(&self) -> String {
        match self {
            Ev::Spawn { parent, child } => format!("t{parent} spawns t{child}"),
            Ev::Switch { to } => format!("  ── switch to t{to}"),
            Ev::MutexLock { t, o } => format!("t{t} locks mutex#{o}"),
            Ev::MutexBlock { t, o } => format!("t{t} blocks on mutex#{o}"),
            Ev::MutexUnlock { t, o } => format!("t{t} unlocks mutex#{o}"),
            Ev::BarrierArrive { t, o, n, size } => {
                format!("t{t} arrives at barrier#{o} ({n}/{size})")
            }
            Ev::BarrierRelease { t, o } => format!("t{t} releases barrier#{o}"),
            Ev::Load {
                t,
                o,
                val,
                ord,
                stale,
                by,
            } => format!(
                "t{t} loads atomic#{o} -> {val} written by t{by} ({ord:?}{})",
                if *stale { ", stale" } else { "" }
            ),
            Ev::Store { t, o, val, ord } => format!("t{t} stores {val} to atomic#{o} ({ord:?})"),
            Ev::Rmw {
                t,
                o,
                old,
                new,
                ord,
            } => {
                format!("t{t} rmw atomic#{o}: {old} -> {new} ({ord:?})")
            }
            Ev::JoinWait { t, target } => format!("t{t} joins t{target}"),
            Ev::Finish { t } => format!("t{t} finishes"),
            Ev::Panic { t, msg } => format!("t{t} panics: {msg}"),
            Ev::Deadlock { blocked } => {
                let mut s = String::from("DEADLOCK — every unfinished thread is blocked:");
                for (t, on) in blocked {
                    s.push_str(&format!("\n    t{t} blocked on {on}"));
                }
                s
            }
        }
    }
}

/// One branch taken during an execution: which alternative, of how
/// many, was chosen at this decision index.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Choice {
    pub chosen: usize,
    pub alts: usize,
}

/// How the explorer picks un-replayed choices.
pub(crate) enum Mode {
    /// Always alternative 0; the driver enumerates the rest.
    Dfs { preemption_bound: usize },
    /// Seeded uniform choice at every decision (PCT-style sampling),
    /// with no preemption bound.
    Random { state: u64 },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AbortKind {
    Deadlock,
    StepLimit,
    Panic,
}

struct State {
    threads: Vec<ThreadState>,
    active: usize,
    abort: Option<AbortKind>,
    /// The panic message of the thread that failed the execution.
    panic_msg: Option<(usize, String)>,
    choices: Vec<Choice>,
    prefix: Vec<usize>,
    mode: Mode,
    preemptions: usize,
    steps: usize,
    max_steps: usize,
    objects: Vec<Object>,
    events: Vec<Ev>,
}

impl State {
    fn ready_threads(&self) -> Vec<usize> {
        self.threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.run == Run::Ready)
            .map(|(i, _)| i)
            .collect()
    }
}

pub(crate) struct Runtime {
    sched: Mutex<State>,
    cv: Condvar,
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

type Guard<'a> = MutexGuard<'a, State>;

impl Runtime {
    pub(crate) fn new(prefix: Vec<usize>, mode: Mode, max_steps: usize) -> Self {
        let main = ThreadState {
            run: Run::Ready,
            clock: {
                let mut c = VClock::default();
                c.bump(0);
                c
            },
        };
        Runtime {
            sched: Mutex::new(State {
                threads: vec![main],
                active: 0,
                abort: None,
                panic_msg: None,
                choices: Vec::new(),
                prefix,
                mode,
                preemptions: 0,
                steps: 0,
                max_steps,
                objects: Vec::new(),
                events: Vec::new(),
            }),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> Guard<'_> {
        // A poisoned scheduler lock only means some thread panicked
        // between lock and unlock during teardown; the state is still
        // consistent enough to finish aborting.
        self.sched.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Accounts one runtime operation against the step budget. Aborts
    /// the execution (and unwinds the caller) on overrun — the engine
    /// under test is round-bounded, so an overrun means a livelock.
    fn budget<'a>(&'a self, st: Guard<'a>) -> Guard<'a> {
        let mut st = st;
        st.steps += 1;
        if st.steps > st.max_steps {
            st.abort = Some(AbortKind::StepLimit);
            self.cv.notify_all();
            drop(st);
            abort_unwind();
        }
        st
    }

    fn check_abort<'a>(&'a self, st: Guard<'a>) -> Guard<'a> {
        if st.abort.is_some() {
            drop(st);
            if std::thread::panicking() {
                // Already unwinding (guard drops during teardown run
                // through here): do not double-panic.
                return self.lock();
            }
            abort_unwind();
        }
        st
    }

    /// The scheduling decision: with the calling thread `me` in its
    /// (possibly just-changed) run state, pick who executes next.
    /// Returns with `me` active and Ready again — unless `wait` is
    /// false (a finished thread handing off), in which case it returns
    /// immediately after the decision.
    fn reschedule<'a>(&'a self, me: usize, st: Guard<'a>, wait: bool) -> Guard<'a> {
        let mut st = self.check_abort(st);
        let ready = st.ready_threads();
        if ready.is_empty() {
            if st.threads.iter().all(|t| t.run == Run::Finished) {
                self.cv.notify_all();
                return st;
            }
            let blocked = st
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| t.run != Run::Finished)
                .map(|(i, t)| {
                    (
                        i,
                        match t.run {
                            Run::BlockedMutex(o) => format!("mutex#{o}"),
                            Run::BlockedBarrier(o) => format!("barrier#{o} (stranded)"),
                            Run::BlockedJoin(t2) => format!("join of t{t2}"),
                            _ => "??".into(),
                        },
                    )
                })
                .collect();
            st.events.push(Ev::Deadlock { blocked });
            st.abort = Some(AbortKind::Deadlock);
            self.cv.notify_all();
            drop(st);
            if std::thread::panicking() {
                return self.lock();
            }
            abort_unwind();
        }

        // Alternatives, deterministically ordered: continuing with the
        // caller (no preemption) is index 0 when possible.
        let me_ready = st.threads[me].run == Run::Ready;
        let mut alts: Vec<usize> = Vec::with_capacity(ready.len());
        if me_ready {
            alts.push(me);
        }
        alts.extend(ready.iter().copied().filter(|&t| t != me));
        if let Mode::Dfs { preemption_bound } = st.mode {
            if me_ready && st.preemptions >= preemption_bound {
                alts.truncate(1);
            }
        }
        let idx = self.decide(&mut st, alts.len());
        let next = alts[idx];
        if me_ready && next != me {
            st.preemptions += 1;
        }
        if next != me {
            st.events.push(Ev::Switch { to: next });
        }
        st.active = next;
        if next == me {
            return st;
        }
        self.cv.notify_all();
        if !wait {
            return st;
        }
        self.wait_my_turn(me, st)
    }

    /// Records a choice among `alts` alternatives, replaying the
    /// prefix when one is set, and returns the chosen index.
    /// Forced moves (one alternative) are not recorded: both the
    /// recording and the replaying execution skip them identically, so
    /// schedules stay short and DFS backtracking touches only real
    /// branches.
    fn decide(&self, st: &mut State, alts: usize) -> usize {
        if alts == 1 {
            return 0;
        }
        let k = st.choices.len();
        let idx = if k < st.prefix.len() {
            // Replay. A prefix index out of range would mean the
            // program under test is not deterministic per schedule —
            // clamp and keep going; DFS then still terminates.
            st.prefix[k].min(alts - 1)
        } else {
            match st.mode {
                Mode::Dfs { .. } => 0,
                Mode::Random { ref mut state } => (xorshift(state) % alts as u64) as usize,
            }
        };
        st.choices.push(Choice { chosen: idx, alts });
        idx
    }

    fn wait_my_turn<'a>(&'a self, me: usize, mut st: Guard<'a>) -> Guard<'a> {
        loop {
            if st.abort.is_some() {
                drop(st);
                if std::thread::panicking() {
                    return self.lock();
                }
                abort_unwind();
            }
            if st.active == me && st.threads[me].run == Run::Ready {
                return st;
            }
            st = self.cv.wait(st).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// A plain preemption point: the caller stays Ready; any other
    /// Ready thread may be scheduled instead.
    fn yield_point<'a>(&'a self, me: usize, st: Guard<'a>) -> Guard<'a> {
        let st = self.budget(st);
        self.reschedule(me, st, true)
    }

    // ---- objects ----------------------------------------------------

    pub(crate) fn register_mutex(&self) -> usize {
        let mut st = self.lock();
        st.objects.push(Object::Mutex {
            held_by: None,
            release: VClock::default(),
        });
        st.objects.len() - 1
    }

    pub(crate) fn register_barrier(&self, size: usize) -> usize {
        let mut st = self.lock();
        st.objects.push(Object::Barrier {
            size: size.max(1),
            arrived: Vec::new(),
            acc: VClock::default(),
            generation: 0,
        });
        st.objects.len() - 1
    }

    pub(crate) fn register_atomic(&self, me: usize, value: u64) -> usize {
        let mut st = self.lock();
        // The initial value is a Release store by the creating thread:
        // creation happens-before every spawn that shares the handle,
        // so it is visible (and, once overwritten by a known store,
        // invisible) exactly like an ordinary first write.
        let clock = st.threads[me].clock.clone();
        st.objects.push(Object::Atomic {
            stores: vec![StoreRec {
                value,
                write: clock.clone(),
                release: Some(clock),
                by: me,
            }],
            last_read: HashMap::new(),
        });
        st.objects.len() - 1
    }

    // ---- mutex ------------------------------------------------------

    pub(crate) fn mutex_lock(&self, me: usize, oid: usize) {
        let mut st = self.yield_point(me, self.lock());
        loop {
            let free = match &st.objects[oid] {
                Object::Mutex { held_by, .. } => held_by.is_none(),
                _ => unreachable!("object {oid} is not a mutex"),
            };
            if free {
                let release = match &mut st.objects[oid] {
                    Object::Mutex { held_by, release } => {
                        *held_by = Some(me);
                        release.clone()
                    }
                    _ => unreachable!(),
                };
                st.threads[me].clock.join(&release);
                st.events.push(Ev::MutexLock { t: me, o: oid });
                return;
            }
            st.events.push(Ev::MutexBlock { t: me, o: oid });
            st.threads[me].run = Run::BlockedMutex(oid);
            st = self.reschedule(me, st, true);
        }
    }

    pub(crate) fn mutex_unlock(&self, me: usize, oid: usize) {
        let mut st = self.lock();
        if st.abort.is_some() {
            // Teardown: guards dropping during unwind must not panic
            // again or reschedule.
            return;
        }
        st.threads[me].clock.bump(me);
        let clock = st.threads[me].clock.clone();
        match &mut st.objects[oid] {
            Object::Mutex { held_by, release } => {
                *held_by = None;
                *release = clock;
            }
            _ => unreachable!("object {oid} is not a mutex"),
        }
        st.events.push(Ev::MutexUnlock { t: me, o: oid });
        // Wake lock waiters; they re-contend at their next turn. Not a
        // choice point itself — the releaser's next operation is one.
        for t in st.threads.iter_mut() {
            if t.run == Run::BlockedMutex(oid) {
                t.run = Run::Ready;
            }
        }
        self.cv.notify_all();
    }

    // ---- barrier ----------------------------------------------------

    /// Returns true for the leader (the last arriver).
    pub(crate) fn barrier_wait(&self, me: usize, oid: usize) -> bool {
        let mut st = self.yield_point(me, self.lock());
        st.threads[me].clock.bump(me);
        let my_clock = st.threads[me].clock.clone();
        let (full, size, n) = match &mut st.objects[oid] {
            Object::Barrier {
                size, arrived, acc, ..
            } => {
                arrived.push(me);
                acc.join(&my_clock);
                (arrived.len() == *size, *size, arrived.len())
            }
            _ => unreachable!("object {oid} is not a barrier"),
        };
        st.events.push(Ev::BarrierArrive {
            t: me,
            o: oid,
            n,
            size,
        });
        if full {
            let (waiters, joined) = match &mut st.objects[oid] {
                Object::Barrier {
                    arrived,
                    acc,
                    generation,
                    ..
                } => {
                    *generation += 1;
                    let w = std::mem::take(arrived);
                    let j = std::mem::take(acc);
                    (w, j)
                }
                _ => unreachable!(),
            };
            // The barrier synchronises everyone with everyone: all
            // participants leave with the joined clock.
            for &t in &waiters {
                st.threads[t].clock.join(&joined);
                if t != me {
                    st.threads[t].run = Run::Ready;
                }
            }
            st.events.push(Ev::BarrierRelease { t: me, o: oid });
            // Which released thread runs first is a real schedule
            // choice.
            let _st = self.reschedule(me, st, true);
            true
        } else {
            st.threads[me].run = Run::BlockedBarrier(oid);
            let _st = self.reschedule(me, st, true);
            false
        }
    }

    // ---- atomics ----------------------------------------------------

    pub(crate) fn atomic_store(&self, me: usize, oid: usize, value: u64, ord: Ordering) {
        let mut st = self.yield_point(me, self.lock());
        st.threads[me].clock.bump(me);
        let clock = st.threads[me].clock.clone();
        let release = ord.releases().then(|| clock.clone());
        match &mut st.objects[oid] {
            Object::Atomic { stores, .. } => stores.push(StoreRec {
                value,
                write: clock,
                release,
                by: me,
            }),
            _ => unreachable!("object {oid} is not an atomic"),
        }
        st.events.push(Ev::Store {
            t: me,
            o: oid,
            val: value,
            ord,
        });
    }

    pub(crate) fn atomic_load(&self, me: usize, oid: usize, ord: Ordering) -> u64 {
        let mut st = self.yield_point(me, self.lock());
        let my_clock = st.threads[me].clock.clone();
        let (cands, newest) = match &st.objects[oid] {
            Object::Atomic { stores, last_read } => {
                let floor = last_read.get(&me).copied().unwrap_or(0);
                let newest = stores.len() - 1;
                let cands: Vec<usize> = if ord == Ordering::SeqCst {
                    // Modelled as reading the newest store: stricter
                    // than C11's total SC order but sound for the
                    // "does weakening break it" question.
                    vec![newest]
                } else {
                    // Newest first, so alternative 0 is the freshest
                    // value and DFS branches into staleness.
                    (floor..stores.len())
                        .rev()
                        .filter(|&i| {
                            // A store is dead to this thread once a
                            // *later* store already happens-before it.
                            !((i + 1)..stores.len()).any(|j| stores[j].write.le(&my_clock))
                        })
                        .collect()
                };
                (cands, newest)
            }
            _ => unreachable!("object {oid} is not an atomic"),
        };
        let idx = if cands.len() > 1 {
            self.decide(&mut st, cands.len())
        } else {
            0
        };
        let chosen = cands[idx];
        let (value, release, by) = match &mut st.objects[oid] {
            Object::Atomic { stores, last_read } => {
                last_read.insert(me, chosen);
                (
                    stores[chosen].value,
                    stores[chosen].release.clone(),
                    stores[chosen].by,
                )
            }
            _ => unreachable!(),
        };
        if ord.acquires() {
            if let Some(rc) = release {
                st.threads[me].clock.join(&rc);
            }
        }
        st.events.push(Ev::Load {
            t: me,
            o: oid,
            val: value,
            ord,
            stale: chosen != newest,
            by,
        });
        value
    }

    /// Read-modify-write: always reads the newest store (C11 guarantees
    /// RMWs read the last value in modification order).
    pub(crate) fn atomic_rmw(
        &self,
        me: usize,
        oid: usize,
        f: impl FnOnce(u64) -> u64,
        ord: Ordering,
    ) -> u64 {
        let mut st = self.yield_point(me, self.lock());
        let (old, release) = match &st.objects[oid] {
            Object::Atomic { stores, .. } => {
                let s = stores.last().expect("atomics always hold the init store");
                (s.value, s.release.clone())
            }
            _ => unreachable!("object {oid} is not an atomic"),
        };
        if ord.acquires() {
            if let Some(rc) = release {
                st.threads[me].clock.join(&rc);
            }
        }
        st.threads[me].clock.bump(me);
        let clock = st.threads[me].clock.clone();
        let new = f(old);
        let rel = ord.releases().then(|| clock.clone());
        match &mut st.objects[oid] {
            Object::Atomic { stores, last_read } => {
                stores.push(StoreRec {
                    value: new,
                    write: clock,
                    release: rel,
                    by: me,
                });
                let idx = stores.len() - 1;
                last_read.insert(me, idx);
            }
            _ => unreachable!(),
        }
        st.events.push(Ev::Rmw {
            t: me,
            o: oid,
            old,
            new,
            ord,
        });
        old
    }

    // ---- threads ----------------------------------------------------

    pub(crate) fn register_thread(&self, parent: usize) -> usize {
        let mut st = self.lock();
        let mut clock = st.threads[parent].clock.clone();
        let tid = st.threads.len();
        clock.bump(tid);
        st.threads.push(ThreadState {
            run: Run::Ready,
            clock,
        });
        st.events.push(Ev::Spawn { parent, child: tid });
        tid
    }

    /// First thing a spawned OS thread does: wait to be scheduled.
    pub(crate) fn thread_begin(self: &Arc<Self>, tid: usize) {
        set_current(Some(Current {
            rt: Arc::clone(self),
            tid,
        }));
        let st = self.lock();
        drop(self.wait_my_turn(tid, st));
    }

    /// Last thing a spawned OS thread does. `panic_msg` carries a real
    /// panic (assertion failure in the code under test); `None` covers
    /// both clean exits and `ModelAbort` teardown.
    pub(crate) fn thread_end(&self, tid: usize, panic_msg: Option<String>) {
        set_current(None);
        let mut st = self.lock();
        st.threads[tid].run = Run::Finished;
        let final_clock = st.threads[tid].clock.clone();
        // Wake joiners and hand them the child's final clock.
        for t in st.threads.iter_mut() {
            if t.run == Run::BlockedJoin(tid) {
                t.run = Run::Ready;
                t.clock.join(&final_clock);
            }
        }
        st.events.push(Ev::Finish { t: tid });
        if let Some(msg) = panic_msg {
            st.events.push(Ev::Panic {
                t: tid,
                msg: msg.clone(),
            });
            if st.abort.is_none() {
                st.abort = Some(AbortKind::Panic);
                st.panic_msg = Some((tid, msg));
            }
            self.cv.notify_all();
            return;
        }
        if st.abort.is_some() {
            self.cv.notify_all();
            return;
        }
        drop(self.reschedule(tid, st, false));
    }

    pub(crate) fn join_wait(&self, me: usize, target: usize) {
        let mut st = self.budget(self.lock());
        loop {
            st = self.check_abort(st);
            if st.threads[target].run == Run::Finished {
                let c = st.threads[target].clock.clone();
                st.threads[me].clock.join(&c);
                st.events.push(Ev::JoinWait { t: me, target });
                return;
            }
            st.threads[me].run = Run::BlockedJoin(target);
            st = self.reschedule(me, st, true);
        }
    }

    /// Kills the execution from outside the scheduled flow (a panic
    /// unwinding through the scope wrapper): blocked threads wake up
    /// and tear down.
    pub(crate) fn force_abort(&self, tid: usize, msg: String) {
        let mut st = self.lock();
        if st.abort.is_none() {
            st.events.push(Ev::Panic {
                t: tid,
                msg: msg.clone(),
            });
            st.abort = Some(AbortKind::Panic);
            st.panic_msg = Some((tid, msg));
        }
        self.cv.notify_all();
    }

    // ---- execution bookkeeping --------------------------------------

    pub(crate) fn outcome(&self) -> ExecOutcome {
        let st = self.lock();
        ExecOutcome {
            abort: st.abort,
            panic_msg: st.panic_msg.clone(),
            choices: st.choices.clone(),
            trace: st.events.iter().map(Ev::render).collect(),
        }
    }
}

pub(crate) struct ExecOutcome {
    pub abort: Option<AbortKind>,
    pub panic_msg: Option<(usize, String)>,
    pub choices: Vec<Choice>,
    pub trace: Vec<String>,
}

// ---- thread-local current runtime ----------------------------------

#[derive(Clone)]
pub(crate) struct Current {
    pub rt: Arc<Runtime>,
    pub tid: usize,
}

thread_local! {
    static CURRENT: std::cell::RefCell<Option<Current>> = const { std::cell::RefCell::new(None) };
}

pub(crate) fn set_current(c: Option<Current>) {
    CURRENT.with(|cell| *cell.borrow_mut() = c);
}

/// The runtime of the model execution this thread belongs to, if any.
/// `None` means primitives run in passthrough (plain std) mode.
pub(crate) fn current() -> Option<Current> {
    CURRENT.with(|cell| cell.borrow().clone())
}

/// Runs `f` as model thread 0 of `rt` and classifies the result.
pub(crate) fn run_main<F: Fn()>(rt: &Arc<Runtime>, f: &F) -> Result<(), String> {
    set_current(Some(Current {
        rt: Arc::clone(rt),
        tid: 0,
    }));
    let r = panic::catch_unwind(AssertUnwindSafe(f));
    set_current(None);
    match r {
        Ok(()) => Ok(()),
        Err(payload) => {
            if payload.downcast_ref::<ModelAbort>().is_some() {
                // Teardown unwind; the underlying failure is recorded
                // in the runtime already.
                Err(String::from("(aborted)"))
            } else {
                let msg = panic_message(&payload);
                rt.force_abort(0, msg.clone());
                Err(msg)
            }
        }
    }
}

pub(crate) fn panic_message(payload: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        String::from("<non-string panic payload>")
    }
}
