//! The exploration driver: exhaustive DFS over schedules up to a
//! preemption bound, then seeded random (PCT-style) sampling beyond
//! it, with failing schedules reported as replayable traces.

use std::fmt;
use std::sync::{Arc, Mutex, MutexGuard};

use crate::rt::{self, AbortKind, Choice, Mode, Runtime};

/// Serialises model explorations within one process: the runtime uses
/// a process-global panic hook to silence teardown unwinds, and tests
/// toggle process-global configuration (mutant switches) around runs.
static MODEL_LOCK: Mutex<()> = Mutex::new(());

fn model_lock() -> MutexGuard<'static, ()> {
    MODEL_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

/// Why an exploration stopped at a failing schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureKind {
    /// Every unfinished thread was blocked — a stranded worker, a lost
    /// barrier participant, or a lock cycle.
    Deadlock,
    /// A thread panicked (an assertion in the code under test failed).
    Panic {
        /// The model thread id that panicked.
        thread: usize,
        /// The panic message.
        message: String,
    },
    /// One execution exceeded the step budget (livelock guard).
    StepLimit,
}

/// A failing schedule, with everything needed to reproduce it.
#[derive(Debug, Clone)]
pub struct Failure {
    /// What went wrong.
    pub kind: FailureKind,
    /// The branch indices of the failing execution; feed to
    /// [`Builder::replay`] to re-run exactly this schedule.
    pub schedule: Vec<usize>,
    /// Schedules explored before (and including) the failing one.
    pub schedules_explored: usize,
    /// The failing execution's event trace, rendered.
    pub trace: Vec<String>,
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "model exploration failed: {:?}", self.kind)?;
        writeln!(
            f,
            "after {} schedule(s); reproduce with Builder::replay(vec!{:?})",
            self.schedules_explored, self.schedule
        )?;
        writeln!(f, "failing schedule trace:")?;
        for line in &self.trace {
            writeln!(f, "  {line}")?;
        }
        Ok(())
    }
}

impl std::error::Error for Failure {}

/// What a completed exploration covered.
#[derive(Debug, Clone, Copy)]
pub struct Report {
    /// Schedules explored by the bounded DFS.
    pub schedules: usize,
    /// Extra seeded-random schedules sampled beyond the bound.
    pub sampled: usize,
    /// Whether the DFS exhausted every schedule within the preemption
    /// bound (false only if `max_schedules` cut it short).
    pub complete: bool,
    /// The preemption bound the DFS ran under.
    pub preemption_bound: usize,
}

/// Exploration configuration.
#[derive(Debug, Clone)]
pub struct Builder {
    /// Max preemptive context switches per schedule for the exhaustive
    /// phase (switching away from a runnable thread; switches forced
    /// by blocking are free). Empirically 2 catches almost everything.
    pub preemption_bound: usize,
    /// DFS safety valve: stop after this many schedules and report
    /// `complete: false` rather than run unbounded.
    pub max_schedules: usize,
    /// Per-execution operation budget (livelock guard).
    pub max_steps: usize,
    /// Seeded-random schedules to sample after the DFS, with no
    /// preemption bound (deterministic PCT-style tail coverage).
    pub samples: usize,
    /// Seed for the sampling phase.
    pub seed: u64,
    /// When set, skip exploration and run exactly this schedule (the
    /// `schedule` field of a reported [`Failure`]).
    pub replay: Option<Vec<usize>>,
}

impl Default for Builder {
    fn default() -> Self {
        Builder {
            preemption_bound: 2,
            max_schedules: 500_000,
            max_steps: 1_000_000,
            samples: 64,
            seed: 0x5eed,
            replay: None,
        }
    }
}

impl Builder {
    /// A fresh default configuration.
    #[must_use]
    pub fn new() -> Self {
        Builder::default()
    }

    /// A configuration that replays one recorded schedule.
    #[must_use]
    pub fn replay(schedule: Vec<usize>) -> Self {
        Builder {
            replay: Some(schedule),
            ..Builder::default()
        }
    }

    /// Explores `f` and returns the coverage report, or the first
    /// failing schedule. `f` runs once per schedule and must be
    /// deterministic given the schedule.
    ///
    /// # Errors
    ///
    /// The first schedule that deadlocks, panics, or exhausts the step
    /// budget.
    pub fn check<F: Fn()>(&self, f: F) -> Result<Report, Failure> {
        let _serial = model_lock();
        install_quiet_abort_hook();

        if let Some(schedule) = &self.replay {
            let (outcome, _) = run_once(
                &f,
                schedule,
                Mode::Dfs {
                    preemption_bound: usize::MAX,
                },
                self.max_steps,
            );
            return match outcome {
                Ok(()) => Ok(Report {
                    schedules: 1,
                    sampled: 0,
                    complete: false,
                    preemption_bound: self.preemption_bound,
                }),
                Err(failure) => Err(failure),
            };
        }

        // Phase 1: exhaustive DFS within the preemption bound.
        let mut prefix: Vec<usize> = Vec::new();
        let mut schedules = 0usize;
        let mut complete = true;
        loop {
            let (outcome, choices) = run_once(
                &f,
                &prefix,
                Mode::Dfs {
                    preemption_bound: self.preemption_bound,
                },
                self.max_steps,
            );
            schedules += 1;
            if let Err(mut failure) = outcome {
                failure.schedules_explored = schedules;
                return Err(failure);
            }
            match next_prefix(&choices) {
                Some(p) => prefix = p,
                None => break,
            }
            if schedules >= self.max_schedules {
                complete = false;
                break;
            }
        }

        // Phase 2: seeded-random sampling with the bound lifted.
        for i in 0..self.samples {
            let seed = self
                .seed
                .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i as u64 + 1))
                | 1;
            let (outcome, _) = run_once(&f, &[], Mode::Random { state: seed }, self.max_steps);
            if let Err(mut failure) = outcome {
                failure.schedules_explored = schedules + i + 1;
                return Err(failure);
            }
        }

        Ok(Report {
            schedules,
            sampled: self.samples,
            complete,
            preemption_bound: self.preemption_bound,
        })
    }

    /// [`check`](Builder::check), panicking with the formatted failing
    /// schedule — the fit for `#[test]` bodies.
    pub fn model<F: Fn()>(&self, f: F) -> Report {
        match self.check(f) {
            Ok(report) => report,
            Err(failure) => panic!("{failure}"),
        }
    }
}

/// Explores `f` under the default configuration, panicking on the
/// first failing schedule.
pub fn model<F: Fn()>(f: F) -> Report {
    Builder::default().model(f)
}

/// One execution under one schedule prefix.
fn run_once<F: Fn()>(
    f: &F,
    prefix: &[usize],
    mode: Mode,
    max_steps: usize,
) -> (Result<(), Failure>, Vec<Choice>) {
    let rt = Arc::new(Runtime::new(prefix.to_vec(), mode, max_steps));
    let main_result = rt::run_main(&rt, f);
    let outcome = rt.outcome();
    let failure_kind = match outcome.abort {
        Some(AbortKind::Deadlock) => Some(FailureKind::Deadlock),
        Some(AbortKind::StepLimit) => Some(FailureKind::StepLimit),
        Some(AbortKind::Panic) => {
            let (thread, message) = outcome
                .panic_msg
                .clone()
                .unwrap_or((0, String::from("<unknown>")));
            Some(FailureKind::Panic { thread, message })
        }
        None => match main_result {
            // A panic on the main thread that never went through the
            // runtime (assertion after all threads joined).
            Err(message) => Some(FailureKind::Panic { thread: 0, message }),
            Ok(()) => None,
        },
    };
    let result = match failure_kind {
        Some(kind) => Err(Failure {
            kind,
            schedule: outcome.choices.iter().map(|c| c.chosen).collect(),
            schedules_explored: 0,
            trace: outcome.trace,
        }),
        None => Ok(()),
    };
    (result, outcome.choices)
}

/// Standard DFS backtracking: bump the deepest choice that still has
/// an untried alternative; `None` when the space is exhausted.
fn next_prefix(choices: &[Choice]) -> Option<Vec<usize>> {
    let mut i = choices.len();
    loop {
        if i == 0 {
            return None;
        }
        i -= 1;
        if choices[i].chosen + 1 < choices[i].alts {
            let mut p: Vec<usize> = choices[..i].iter().map(|c| c.chosen).collect();
            p.push(choices[i].chosen + 1);
            return Some(p);
        }
    }
}

/// Installs (once per process) a panic hook that silences the
/// `ModelAbort` teardown panics worker threads use to unwind, while
/// delegating every real panic to the hook that was active before.
/// The wrapper stays installed — aborts only occur inside model runs
/// and everything else passes straight through.
fn install_quiet_abort_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<rt::ModelAbort>().is_none() {
                prev(info);
            }
        }));
    });
}
